#include "serve/service.h"

#include <algorithm>
#include <charconv>
#include <utility>

#include "obs/export.h"
#include "signals/engine_obs.h"
#include "signals/sharded_engine.h"

namespace rrr::serve {
namespace {

// ---------------------------------------------------------------------------
// Query-string parsing. Deliberately strict: the /v1 family is a typed API,
// so anything outside the documented grammar — a token without '=', an
// empty or duplicated or unknown key, a value that fails its type — gets
// "400 Bad Request" with the offending token named, never a guess.
// Percent-escapes are not part of the grammar (no documented value needs
// them), so '%' is rejected like any other malformed byte.
// ---------------------------------------------------------------------------

struct Query {
  std::vector<std::pair<std::string, std::string>> params;

  const std::string* get(const std::string& key) const {
    for (const auto& [k, v] : params) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

// Parses "k=v&k2=v2" into `out`; returns an error message on the first
// grammar violation, empty string on success.
std::string parse_query(const std::string& raw, Query& out) {
  std::size_t pos = 0;
  while (pos <= raw.size()) {
    std::size_t amp = raw.find('&', pos);
    if (amp == std::string::npos) amp = raw.size();
    std::string token = raw.substr(pos, amp - pos);
    pos = amp + 1;
    if (token.empty()) {
      if (raw.empty()) break;  // bare "?" — no parameters
      return "empty query parameter";
    }
    std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return "query parameter without '=': " + token;
    }
    std::string key = token.substr(0, eq);
    std::string value = token.substr(eq + 1);
    if (key.empty()) return "query parameter with empty key: " + token;
    if (out.get(key) != nullptr) return "duplicate query parameter: " + key;
    out.params.emplace_back(std::move(key), std::move(value));
    if (pos > raw.size()) break;
  }
  return "";
}

// Rejects keys outside `allowed`; returns the offender or empty.
std::string unknown_key(const Query& query,
                        std::initializer_list<const char*> allowed) {
  for (const auto& [k, v] : query.params) {
    bool ok = false;
    for (const char* a : allowed) ok = ok || k == a;
    if (!ok) return k;
  }
  return "";
}

// Unsigned decimal with no sign, no blanks, full-token match.
std::optional<std::uint64_t> parse_u64(const std::string& text) {
  if (text.empty()) return std::nullopt;
  std::uint64_t value = 0;
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  return value;
}

std::string error_body(int status, const std::string& message) {
  return "{\"error\":\"" + obs::json_escape(message) +
         "\",\"status\":" + std::to_string(status) + "}\n";
}

obs::HttpResponse bad_request(const std::string& message) {
  return {400, "application/json", error_body(400, message)};
}

obs::HttpResponse not_found(const std::string& message) {
  return {404, "application/json", error_body(404, message)};
}

// ---------------------------------------------------------------------------
// JSON assembly. All numbers are plain decimal; strings are the fixed
// label slugs (freshness_label, signals::technique_label) plus dotted-quad
// addresses — nothing needs escaping, but json_escape guards the error
// path above anyway. Key order is fixed so bodies are byte-stable
// (the golden tests and tools/check_serving_api.py rely on it).
// ---------------------------------------------------------------------------

void append_envelope(std::string& out, const ServingSnapshot& snap) {
  out += "\"schema\":\"rrr-serve-v1\",\"version\":";
  out += std::to_string(snap.version);
  out += ",\"window\":";
  out += std::to_string(snap.window);
  out += ",\"time\":";
  out += std::to_string(snap.time_seconds);
  out += ",\"table_epoch\":";
  out += std::to_string(snap.table_epoch);
}

void append_pair_key(std::string& out, const tr::PairKey& pair) {
  out += "{\"probe\":";
  out += std::to_string(pair.probe);
  out += ",\"dst\":\"";
  out += pair.dst.to_string();
  out += "\"}";
}

void append_signal_event(std::string& out, const SignalEvent& event) {
  out += "{\"window\":";
  out += std::to_string(event.window);
  out += ",\"time\":";
  out += std::to_string(event.time_seconds);
  out += ",\"technique\":\"";
  out += signals::technique_label(event.technique);
  out += "\",\"border_index\":";
  out += event.border_index == signals::kWholePath
             ? "-1"
             : std::to_string(event.border_index);
  out += ",\"span_seconds\":";
  out += std::to_string(event.span_seconds);
  out += "}";
}

void append_verdict_fields(std::string& out, const PairVerdict& verdict) {
  out += "\"freshness\":\"";
  out += freshness_label(verdict.freshness);
  out += "\",\"watched_window\":";
  out += std::to_string(verdict.watched_window);
  out += ",\"active_signals\":";
  out += std::to_string(verdict.active_signals);
  out += ",\"stale_since_window\":";
  out += std::to_string(verdict.stale_since_window);
  out += ",\"signals_total\":";
  out += std::to_string(verdict.signals_total);
}

}  // namespace

StalenessService::StalenessService(ServiceParams params)
    : params_(params) {
  if (params_.history_cap < 1) params_.history_cap = 1;
  if (params_.default_queue_k < 0) params_.default_queue_k = 0;
}

void StalenessService::on_window(
    const signals::ShardedStalenessEngine& engine, std::int64_t window,
    TimePoint window_end,
    const std::vector<signals::StalenessSignal>& window_signals) {
  on_window(engine.pair_states(), engine.table_epoch(), window, window_end,
            window_signals);
}

void StalenessService::on_window(
    const std::vector<signals::PairStateView>& states,
    std::uint64_t table_epoch, std::int64_t window, TimePoint window_end,
    const std::vector<signals::StalenessSignal>& window_signals) {
  // Fold the window's registered signals into the per-pair evidence rings.
  for (const signals::StalenessSignal& signal : window_signals) {
    PairTrack& track = tracks_[signal.pair];
    ++track.total;
    if (track.history.size() >= params_.history_cap) {
      track.history.erase(track.history.begin());
    }
    track.history.push_back(SignalEvent{signal.window, signal.time.seconds(),
                                        signal.technique, signal.border_index,
                                        signal.span_seconds});
  }

  // Materialize the immutable view. `states` arrives sorted by pair (the
  // engine merges shards canonically), which find() relies on.
  auto snap = std::make_shared<ServingSnapshot>();
  snap->version = windows_published_.load(std::memory_order_relaxed) + 1;
  snap->window = window;
  snap->time_seconds = window_end.seconds();
  snap->table_epoch = table_epoch;
  snap->history_cap = params_.history_cap;
  snap->pairs.reserve(states.size());
  for (const signals::PairStateView& state : states) {
    PairTrack& track = tracks_[state.pair];
    // Stale-episode bookkeeping: entering stale stamps the episode with the
    // window of the newest signal (falling back to the current window when
    // the transition came from a resume); leaving stale clears it.
    if (state.freshness == tr::Freshness::kStale) {
      if (track.stale_since < 0) {
        track.stale_since =
            track.history.empty() ? window : track.history.back().window;
      }
    } else {
      track.stale_since = -1;
    }
    PairVerdict verdict;
    verdict.pair = state.pair;
    verdict.freshness = state.freshness;
    verdict.watched_window = state.watched_window;
    verdict.active_signals = state.active_signals;
    verdict.stale_since_window = track.stale_since;
    verdict.signals_total = track.total;
    verdict.history = track.history;
    switch (state.freshness) {
      case tr::Freshness::kFresh: ++snap->fresh; break;
      case tr::Freshness::kStale: ++snap->stale; break;
      case tr::Freshness::kUnknown: ++snap->unknown; break;
    }
    snap->pairs.push_back(std::move(verdict));
  }

  // Refresh-priority queue: every stale pair, stalest episode first; ties
  // break toward more corroborating evidence, then pair order. Fully
  // deterministic — no RNG, unlike the engine's budgeted plan_refreshes —
  // so the queue is a pure function of the snapshot.
  for (std::uint32_t i = 0; i < snap->pairs.size(); ++i) {
    if (snap->pairs[i].freshness == tr::Freshness::kStale) {
      snap->refresh_queue.push_back(i);
    }
  }
  std::sort(snap->refresh_queue.begin(), snap->refresh_queue.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              const PairVerdict& va = snap->pairs[a];
              const PairVerdict& vb = snap->pairs[b];
              if (va.stale_since_window != vb.stale_since_window) {
                return va.stale_since_window < vb.stale_since_window;
              }
              if (va.active_signals != vb.active_signals) {
                return va.active_signals > vb.active_signals;
              }
              if (va.signals_total != vb.signals_total) {
                return va.signals_total > vb.signals_total;
              }
              return va.pair < vb.pair;
            });

  publisher_.publish(std::move(snap));
  windows_published_.fetch_add(1, std::memory_order_relaxed);
}

std::optional<obs::HttpResponse> StalenessService::handle(
    const std::string& target) const {
  const std::size_t qmark = target.find('?');
  const std::string path = target.substr(0, qmark);
  if (path.rfind("/v1/", 0) != 0 && path != "/v1") return std::nullopt;

  Query query;
  if (qmark != std::string::npos) {
    std::string error = parse_query(target.substr(qmark + 1), query);
    if (!error.empty()) return bad_request(error);
  }
  SnapshotPtr snap = publisher_.read();

  auto parse_pair = [&](tr::PairKey& pair) -> std::optional<obs::HttpResponse> {
    const std::string* src = query.get("src");
    const std::string* dst = query.get("dst");
    if (src == nullptr) return bad_request("missing required parameter: src");
    if (dst == nullptr) return bad_request("missing required parameter: dst");
    std::optional<std::uint64_t> probe = parse_u64(*src);
    if (!probe || *probe > 0xFFFFFFFFull) {
      return bad_request("src is not a probe id: " + *src);
    }
    std::optional<Ipv4> ip = Ipv4::parse(*dst);
    if (!ip) return bad_request("dst is not a dotted-quad address: " + *dst);
    pair.probe = static_cast<tr::ProbeId>(*probe);
    pair.dst = *ip;
    return std::nullopt;
  };
  auto parse_limit = [&](std::size_t fallback)
      -> std::pair<std::size_t, std::optional<obs::HttpResponse>> {
    const std::string* limit = query.get("limit");
    if (limit == nullptr) return {fallback, std::nullopt};
    std::optional<std::uint64_t> value = parse_u64(*limit);
    if (!value) {
      return {0, bad_request("limit is not a non-negative integer: " + *limit)};
    }
    return {static_cast<std::size_t>(
                std::min<std::uint64_t>(*value, params_.max_page)),
            std::nullopt};
  };

  if (path == "/v1/verdict") {
    if (std::string key = unknown_key(query, {"src", "dst"}); !key.empty()) {
      return bad_request("unknown query parameter: " + key);
    }
    tr::PairKey pair;
    if (auto error = parse_pair(pair)) return *error;
    return verdict_response(*snap, pair);
  }
  if (path == "/v1/signals") {
    if (std::string key = unknown_key(query, {"src", "dst", "limit"});
        !key.empty()) {
      return bad_request("unknown query parameter: " + key);
    }
    tr::PairKey pair;
    if (auto error = parse_pair(pair)) return *error;
    auto [limit, error] = parse_limit(params_.history_cap);
    if (error) return *error;
    return signals_response(*snap, pair, limit);
  }
  if (path == "/v1/pairs") {
    if (std::string key = unknown_key(query, {"freshness", "limit"});
        !key.empty()) {
      return bad_request("unknown query parameter: " + key);
    }
    std::optional<tr::Freshness> filter;
    if (const std::string* value = query.get("freshness")) {
      if (*value == "fresh") filter = tr::Freshness::kFresh;
      else if (*value == "stale") filter = tr::Freshness::kStale;
      else if (*value == "unknown") filter = tr::Freshness::kUnknown;
      else return bad_request("freshness must be fresh|stale|unknown, got: " +
                              *value);
    }
    auto [limit, error] = parse_limit(params_.max_page);
    if (error) return *error;
    return pairs_response(*snap, filter, limit);
  }
  if (path == "/v1/refresh-queue") {
    if (std::string key = unknown_key(query, {"k"}); !key.empty()) {
      return bad_request("unknown query parameter: " + key);
    }
    int k = params_.default_queue_k;
    if (const std::string* value = query.get("k")) {
      std::optional<std::uint64_t> parsed = parse_u64(*value);
      if (!parsed || *parsed > static_cast<std::uint64_t>(params_.max_page)) {
        return bad_request("k is not a non-negative integer within " +
                           std::to_string(params_.max_page) + ": " + *value);
      }
      k = static_cast<int>(*parsed);
    }
    return queue_response(*snap, k);
  }
  return not_found("unknown /v1 route: " + path);
}

obs::HttpResponse StalenessService::verdict_response(
    const ServingSnapshot& snap, const tr::PairKey& pair) const {
  const PairVerdict* verdict = snap.find(pair);
  if (verdict == nullptr) {
    return not_found("unknown pair: src=" + std::to_string(pair.probe) +
                     " dst=" + pair.dst.to_string());
  }
  std::string body = "{";
  append_envelope(body, snap);
  body += ",\"pair\":";
  append_pair_key(body, verdict->pair);
  body += ",";
  append_verdict_fields(body, *verdict);
  body += ",\"last_signal\":";
  if (verdict->history.empty()) {
    body += "null";
  } else {
    append_signal_event(body, verdict->history.back());
  }
  body += "}\n";
  return {200, "application/json", std::move(body)};
}

obs::HttpResponse StalenessService::signals_response(
    const ServingSnapshot& snap, const tr::PairKey& pair,
    std::size_t limit) const {
  const PairVerdict* verdict = snap.find(pair);
  if (verdict == nullptr) {
    return not_found("unknown pair: src=" + std::to_string(pair.probe) +
                     " dst=" + pair.dst.to_string());
  }
  const std::vector<SignalEvent>& history = verdict->history;
  const std::size_t count = std::min(limit, history.size());
  std::string body = "{";
  append_envelope(body, snap);
  body += ",\"pair\":";
  append_pair_key(body, verdict->pair);
  body += ",\"history_cap\":";
  body += std::to_string(snap.history_cap);
  body += ",\"signals_total\":";
  body += std::to_string(verdict->signals_total);
  body += ",\"dropped\":";
  body += std::to_string(verdict->signals_total - count);
  body += ",\"signals\":[";
  // Newest `count` events, oldest of them first (chronological order).
  for (std::size_t i = history.size() - count; i < history.size(); ++i) {
    if (i != history.size() - count) body += ",";
    append_signal_event(body, history[i]);
  }
  body += "]}\n";
  return {200, "application/json", std::move(body)};
}

obs::HttpResponse StalenessService::pairs_response(
    const ServingSnapshot& snap, std::optional<tr::Freshness> filter,
    std::size_t limit) const {
  std::string body = "{";
  append_envelope(body, snap);
  body += ",\"corpus\":";
  body += std::to_string(snap.pairs.size());
  body += ",\"counts\":{\"fresh\":";
  body += std::to_string(snap.fresh);
  body += ",\"stale\":";
  body += std::to_string(snap.stale);
  body += ",\"unknown\":";
  body += std::to_string(snap.unknown);
  body += "},\"pairs\":[";
  std::size_t returned = 0;
  for (const PairVerdict& verdict : snap.pairs) {
    if (filter && verdict.freshness != *filter) continue;
    if (returned >= limit) break;
    if (returned > 0) body += ",";
    body += "{\"probe\":";
    body += std::to_string(verdict.pair.probe);
    body += ",\"dst\":\"";
    body += verdict.pair.dst.to_string();
    body += "\",";
    append_verdict_fields(body, verdict);
    body += "}";
    ++returned;
  }
  body += "],\"returned\":";
  body += std::to_string(returned);
  body += "}\n";
  return {200, "application/json", std::move(body)};
}

obs::HttpResponse StalenessService::queue_response(const ServingSnapshot& snap,
                                                   int k) const {
  std::string body = "{";
  append_envelope(body, snap);
  body += ",\"k\":";
  body += std::to_string(k);
  body += ",\"stale_total\":";
  body += std::to_string(snap.refresh_queue.size());
  body += ",\"queue\":[";
  const std::size_t count =
      std::min<std::size_t>(static_cast<std::size_t>(k),
                            snap.refresh_queue.size());
  for (std::size_t rank = 0; rank < count; ++rank) {
    const PairVerdict& verdict = snap.pairs[snap.refresh_queue[rank]];
    if (rank > 0) body += ",";
    body += "{\"rank\":";
    body += std::to_string(rank + 1);
    body += ",\"probe\":";
    body += std::to_string(verdict.pair.probe);
    body += ",\"dst\":\"";
    body += verdict.pair.dst.to_string();
    body += "\",\"stale_since_window\":";
    body += std::to_string(verdict.stale_since_window);
    body += ",\"active_signals\":";
    body += std::to_string(verdict.active_signals);
    body += ",\"signals_total\":";
    body += std::to_string(verdict.signals_total);
    body += ",\"last_technique\":";
    if (verdict.history.empty()) {
      body += "null";
    } else {
      body += "\"";
      body += signals::technique_label(verdict.history.back().technique);
      body += "\"";
    }
    body += "}";
  }
  body += "]}\n";
  return {200, "application/json", std::move(body)};
}

}  // namespace rrr::serve
