#include "serve/snapshot.h"

#include <algorithm>

namespace rrr::serve {

const PairVerdict* ServingSnapshot::find(const tr::PairKey& pair) const {
  auto it = std::lower_bound(
      pairs.begin(), pairs.end(), pair,
      [](const PairVerdict& v, const tr::PairKey& key) { return v.pair < key; });
  if (it == pairs.end() || it->pair != pair) return nullptr;
  return &*it;
}

SnapshotPublisher::SnapshotPublisher() {
  current_.store(std::make_shared<const ServingSnapshot>(),
                 std::memory_order_release);
}

void SnapshotPublisher::publish(SnapshotPtr snapshot) {
  current_.store(std::move(snapshot), std::memory_order_release);
}

SnapshotPtr SnapshotPublisher::read() const {
  return current_.load(std::memory_order_acquire);
}

const char* freshness_label(tr::Freshness freshness) {
  switch (freshness) {
    case tr::Freshness::kFresh: return "fresh";
    case tr::Freshness::kStale: return "stale";
    case tr::Freshness::kUnknown: return "unknown";
  }
  return "?";
}

}  // namespace rrr::serve
