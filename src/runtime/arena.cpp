#include "runtime/arena.h"

#include <algorithm>

namespace rrr::runtime {

void* Arena::allocate_slow(std::size_t bytes, std::size_t align) {
  allocated_ += bytes;
  // Advance through existing (recycled) chunks first; allocate a new slab
  // only when none of them fits. Oversized requests get a dedicated slab so
  // one huge batch cannot poison the chunk size for every later epoch.
  while (current_ < chunks_.size()) {
    std::size_t offset = (offset_ + (align - 1)) & ~(align - 1);
    if (offset + bytes <= chunks_[current_].size) {
      void* p = chunks_[current_].data.get() + offset;
      offset_ = offset + bytes;
      return p;
    }
    ++current_;
    offset_ = 0;
  }
  std::size_t size = std::max(bytes + align, chunk_bytes_);
  Chunk chunk;
  chunk.data = std::make_unique<std::byte[]>(size);
  chunk.size = size;
  chunks_.push_back(std::move(chunk));
  current_ = chunks_.size() - 1;
  void* base = chunks_[current_].data.get();
  std::size_t offset =
      (reinterpret_cast<std::uintptr_t>(base) + (align - 1)) & ~(align - 1);
  offset -= reinterpret_cast<std::uintptr_t>(base);
  offset_ = offset + bytes;
  return chunks_[current_].data.get() + offset;
}

}  // namespace rrr::runtime
