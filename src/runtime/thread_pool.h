// Deterministic parallel runtime: a fixed-size worker pool.
//
// The pool runs arbitrary void() closures. Submission is thread-safe,
// including from inside a running task (nested submit); a pool constructed
// with `threads <= 1` spawns no workers and executes submitted tasks inline,
// so single-threaded configurations pay no synchronization cost and follow
// the exact serial code path.
//
// Blocking helpers built on top of the pool (see parallel.h) must never
// sleep while queued work could make progress: `run_one()` lets any waiting
// thread steal a queued task, which is what makes nested parallel sections
// deadlock-free on a bounded pool.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace rrr::runtime {

// Pool instrumentation (all runtime-domain): how long tasks sit queued, how
// long they run, how many ran, total busy microseconds (utilization =
// busy_us / (wall * threads)), and the queue depth at each enqueue.
struct PoolObs {
  obs::Histogram* wait_us = nullptr;
  obs::Histogram* run_us = nullptr;
  obs::Counter* tasks = nullptr;
  obs::Counter* busy_us = nullptr;
  obs::Gauge* queue_depth = nullptr;

  static PoolObs create(obs::MetricsRegistry& registry);
};

class ThreadPool {
 public:
  // `threads` is the total parallelism degree including the caller of a
  // parallel section: the pool spawns max(0, threads - 1) workers.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Parallelism degree (>= 1). 1 means fully serial.
  int thread_count() const { return static_cast<int>(workers_.size()) + 1; }

  // Enqueues `task`; runs it inline when the pool has no workers.
  void submit(std::function<void()> task);

  // Runs one queued task on the calling thread; false when the queue is
  // empty. Used by waiters to help drain the queue (nested parallelism).
  bool run_one();

  std::size_t queued() const;

  // Attaches (or detaches, with nullptr) instrumentation. The PoolObs must
  // outlive the pool or the next set_obs call; tasks already queued keep
  // being timed against whatever is attached when they run.
  void set_obs(const PoolObs* obs) {
    obs_.store(obs, std::memory_order_release);
  }

  // Attaches (or detaches, with nullptr) the trace recorder: every executed
  // task becomes a "task" span on its worker's track. Same lifetime
  // contract as set_obs.
  void set_tracer(obs::TraceRecorder* tracer) {
    tracer_.store(tracer, std::memory_order_release);
  }

 private:
  struct Item {
    std::function<void()> fn;
    // Only stamped when instrumentation is attached at enqueue time.
    obs::SpanClock::time_point enqueued;
  };

  void worker_loop();
  // Runs one dequeued item, recording wait/run spans when attached.
  void execute(Item item);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Item> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
  std::atomic<const PoolObs*> obs_{nullptr};
  std::atomic<obs::TraceRecorder*> tracer_{nullptr};
};

}  // namespace rrr::runtime
