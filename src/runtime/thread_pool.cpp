#include "runtime/thread_pool.h"

namespace rrr::runtime {

ThreadPool::ThreadPool(int threads) {
  int workers = threads - 1;
  if (workers < 0) workers = 0;
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  // Tasks still queued at destruction are dropped; parallel.h waits for its
  // tasks before returning, so only fire-and-forget submissions can be lost.
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::run_one() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

std::size_t ThreadPool::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace rrr::runtime
