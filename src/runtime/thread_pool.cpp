#include "runtime/thread_pool.h"

namespace rrr::runtime {

PoolObs PoolObs::create(obs::MetricsRegistry& registry) {
  PoolObs out;
  out.wait_us = &registry.histogram(
      "rrr_pool_task_wait_us", obs::duration_buckets_us(), {},
      obs::Domain::kRuntime, "Microseconds tasks spent queued before running");
  out.run_us = &registry.histogram(
      "rrr_pool_task_run_us", obs::duration_buckets_us(), {},
      obs::Domain::kRuntime, "Microseconds tasks spent executing");
  out.tasks = &registry.counter("rrr_pool_tasks_total", {},
                                obs::Domain::kRuntime,
                                "Tasks executed by the pool");
  out.busy_us = &registry.counter(
      "rrr_pool_busy_us_total", {}, obs::Domain::kRuntime,
      "Total task execution microseconds (utilization numerator)");
  out.queue_depth =
      &registry.gauge("rrr_pool_queue_depth", {}, obs::Domain::kRuntime,
                      "Queue depth observed at the latest enqueue");
  return out;
}

ThreadPool::ThreadPool(int threads) {
  int workers = threads - 1;
  if (workers < 0) workers = 0;
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  // Tasks still queued at destruction are dropped; parallel.h waits for its
  // tasks before returning, so only fire-and-forget submissions can be lost.
}

void ThreadPool::execute(Item item) {
  const PoolObs* obs = obs_.load(std::memory_order_acquire);
  obs::TraceRecorder* tracer = tracer_.load(std::memory_order_acquire);
  if (obs == nullptr) {
    obs::TraceSpan span(tracer, "task", "pool");
    item.fn();
    return;
  }
  auto start = obs::SpanClock::now();
  if (item.enqueued.time_since_epoch().count() != 0) {
    obs::observe(obs->wait_us,
                 std::chrono::duration<double, std::micro>(start -
                                                           item.enqueued)
                     .count());
  }
  {
    obs::TraceSpan span(tracer, "task", "pool");
    item.fn();
  }
  auto end = obs::SpanClock::now();
  double run_us =
      std::chrono::duration<double, std::micro>(end - start).count();
  obs::observe(obs->run_us, run_us);
  obs::inc(obs->tasks);
  obs::inc(obs->busy_us, static_cast<std::int64_t>(run_us));
}

void ThreadPool::submit(std::function<void()> task) {
  const PoolObs* obs = obs_.load(std::memory_order_acquire);
  if (workers_.empty()) {
    execute(Item{std::move(task), {}});
    return;
  }
  Item item{std::move(task), {}};
  if (obs != nullptr) item.enqueued = obs::SpanClock::now();
  std::size_t depth;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(item));
    depth = queue_.size();
  }
  if (obs != nullptr) {
    obs::set(obs->queue_depth, static_cast<std::int64_t>(depth));
  }
  cv_.notify_one();
}

bool ThreadPool::run_one() {
  Item item;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    item = std::move(queue_.front());
    queue_.pop_front();
  }
  execute(std::move(item));
  return true;
}

std::size_t ThreadPool::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Item item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    execute(std::move(item));
  }
}

}  // namespace rrr::runtime
