// TaskGroup: a handful of independent void() tasks on a shared ThreadPool.
//
// parallel_for covers homogeneous index ranges; a TaskGroup covers the
// heterogeneous case — N distinct closures (e.g. one window-close task per
// engine shard, or the three global trace monitors) running concurrently on
// the same pool. Tasks may themselves open nested parallel sections on the
// pool: wait() drains queued work while blocking, so a bounded pool cannot
// deadlock on nesting (same discipline as parallel_for).
//
// With a null or serial pool, spawn() runs the task inline on the calling
// thread — the exact single-threaded code path, no synchronization.
// The first exception thrown by any task is rethrown from wait().
#pragma once

#include <chrono>
#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <utility>

#include "runtime/thread_pool.h"

namespace rrr::runtime {

class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  // Joins outstanding tasks; a pending exception is dropped here, so call
  // wait() explicitly when failures matter.
  ~TaskGroup() {
    try {
      wait();
    } catch (...) {
    }
  }

  void spawn(std::function<void()> task) {
    if (pool_ == nullptr || pool_->thread_count() <= 1) {
      try {
        task();
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        if (!error_) error_ = std::current_exception();
      }
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++pending_;
    }
    pool_->submit([this, task = std::move(task)] {
      try {
        task();
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        if (!error_) error_ = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) done_cv_.notify_all();
    });
  }

  // Blocks until every spawned task finished, helping to drain the pool's
  // queue meanwhile; rethrows the first task exception.
  void wait() {
    if (pool_ != nullptr) {
      std::unique_lock<std::mutex> lock(mu_);
      while (pending_ > 0) {
        lock.unlock();
        bool ran = pool_->run_one();
        lock.lock();
        if (!ran && pending_ > 0) {
          done_cv_.wait_for(lock, std::chrono::milliseconds(1));
        }
      }
    }
    std::exception_ptr error;
    {
      std::lock_guard<std::mutex> lock(mu_);
      std::swap(error, error_);
    }
    if (error) std::rethrow_exception(error);
  }

 private:
  ThreadPool* pool_;
  std::mutex mu_;
  std::condition_variable done_cv_;
  std::size_t pending_ = 0;
  std::exception_ptr error_;
};

}  // namespace rrr::runtime
