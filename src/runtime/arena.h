// Epoch-scoped bump allocator for window-lifetime objects.
//
// The close path builds large flat scratch structures — the dispatched
// record batch, per-shard signal buffers — whose lifetime is exactly one
// window close: the epoch pipeline already bounds it (everything is dead by
// the flip). An MPS-style arena exploits that: allocation is a pointer bump
// into chunked slabs, individual frees don't exist, and `reset()` at the
// flip recycles every slab wholesale for the next window, so the steady
// state performs zero heap traffic no matter how many records a window
// carries.
//
// Ownership rules (DESIGN.md §12): one Arena has one owner (an engine); all
// allocation happens on the owner's serial close path; nothing allocated
// from it may be retained past the owner's `reset()` call. Containers get
// arena backing via ArenaAllocator<T> — destructors still run normally
// (clear()/scope exit); only the *memory* is reclaimed lazily by reset().
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace rrr::runtime {

class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 256 * 1024;

  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes) {}
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Bump-allocates `bytes` aligned to `align` (a power of two). Requests
  // larger than the chunk size get a dedicated oversized slab.
  void* allocate(std::size_t bytes, std::size_t align) {
    std::size_t offset = (offset_ + (align - 1)) & ~(align - 1);
    if (current_ >= chunks_.size() || offset + bytes > chunks_[current_].size) {
      return allocate_slow(bytes, align);
    }
    void* p = chunks_[current_].data.get() + offset;
    offset_ = offset + bytes;
    allocated_ += bytes;
    return p;
  }

  // Rewinds every chunk for reuse. O(1) amortized: slabs are kept, so the
  // next epoch bumps through already-warm memory. Everything previously
  // allocated becomes invalid.
  void reset() {
    current_ = 0;
    offset_ = 0;
    high_water_ = std::max(high_water_, allocated_);
    allocated_ = 0;
  }

  // Releases the slabs themselves (reset() keeps them).
  void release() {
    chunks_.clear();
    reset();
  }

  std::size_t bytes_allocated() const { return allocated_; }
  std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    return total;
  }
  std::size_t high_water_bytes() const {
    return std::max(high_water_, allocated_);
  }
  std::size_t chunk_count() const { return chunks_.size(); }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void* allocate_slow(std::size_t bytes, std::size_t align);

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t current_ = 0;  // index of the chunk being bumped
  std::size_t offset_ = 0;   // bump offset within chunks_[current_]
  std::size_t allocated_ = 0;
  std::size_t high_water_ = 0;
};

// STL-compatible allocator over an Arena. deallocate() is a no-op — memory
// comes back at the owner's reset(). Copy/rebind share the same arena, so a
// vector<T, ArenaAllocator<T>> grows entirely inside it.
template <class T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena& arena) : arena_(&arena) {}
  template <class U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, std::size_t) {}  // reclaimed wholesale by reset()

  Arena* arena() const { return arena_; }

  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ == b.arena_;
  }

 private:
  Arena* arena_;
};

}  // namespace rrr::runtime
