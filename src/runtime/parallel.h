// parallel_for / parallel_map over a ThreadPool.
//
// Both helpers fall back to a plain serial loop when the pool is null or has
// a parallelism degree of 1, so `threads <= 1` configurations execute the
// exact single-threaded code path. In the parallel case the caller
// participates in the work, and while waiting for helpers it drains other
// queued pool tasks, which keeps nested parallel sections deadlock-free.
//
// Determinism contract: parallel_map writes result i of input i — results
// come back in input order no matter how indices were scheduled. Callers
// that merge per-item buffers by concatenating them in input order therefore
// produce output identical to a serial run, regardless of thread count.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <exception>
#include <memory>
#include <type_traits>
#include <vector>

#include "runtime/thread_pool.h"

namespace rrr::runtime {
namespace detail {

struct ForState {
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex mu;
  std::condition_variable done_cv;
  std::size_t helpers_pending = 0;
  std::exception_ptr error;
};

}  // namespace detail

// Runs fn(i) for every i in [0, n), blocking until all are done. Work is
// claimed in chunks of `grain` indices (0 = pick automatically). The first
// exception thrown by `fn` is rethrown on the calling thread after every
// in-flight index finished; remaining unclaimed work is skipped.
template <typename Fn>
void parallel_for(ThreadPool* pool, std::size_t n, Fn&& fn,
                  std::size_t grain = 0) {
  int threads = pool != nullptr ? pool->thread_count() : 1;
  if (threads <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  if (grain == 0) {
    // Aim for several chunks per thread so uneven items still balance.
    grain = n / (static_cast<std::size_t>(threads) * 8);
    if (grain == 0) grain = 1;
  }

  auto state = std::make_shared<detail::ForState>();
  auto work = [state, n, grain, &fn] {
    while (!state->failed.load(std::memory_order_relaxed)) {
      std::size_t begin = state->next.fetch_add(grain);
      if (begin >= n) break;
      std::size_t end = begin + grain < n ? begin + grain : n;
      for (std::size_t i = begin; i < end; ++i) {
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(state->mu);
          if (!state->error) state->error = std::current_exception();
          state->failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
    }
  };

  std::size_t chunks = (n + grain - 1) / grain;
  std::size_t helpers = static_cast<std::size_t>(threads) - 1;
  if (helpers > chunks - 1) helpers = chunks - 1;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->helpers_pending = helpers;
  }
  for (std::size_t h = 0; h < helpers; ++h) {
    pool->submit([state, work] {
      work();
      std::lock_guard<std::mutex> lock(state->mu);
      if (--state->helpers_pending == 0) state->done_cv.notify_all();
    });
  }

  work();  // the caller is a full participant

  // Wait for helpers, stealing other queued tasks meanwhile: a helper of
  // ours may sit behind tasks of a nested section that only finish if
  // someone runs them.
  std::unique_lock<std::mutex> lock(state->mu);
  while (state->helpers_pending > 0) {
    lock.unlock();
    bool ran = pool->run_one();
    lock.lock();
    if (!ran && state->helpers_pending > 0) {
      state->done_cv.wait_for(lock, std::chrono::milliseconds(1));
    }
  }
  if (state->error) std::rethrow_exception(state->error);
}

// Maps fn over `items`, returning results in input order (result i comes
// from item i). The result type must be default-constructible and movable.
template <typename T, typename Fn>
auto parallel_map(ThreadPool* pool, const std::vector<T>& items, Fn&& fn,
                  std::size_t grain = 0)
    -> std::vector<std::decay_t<std::invoke_result_t<Fn&, const T&>>> {
  using Result = std::decay_t<std::invoke_result_t<Fn&, const T&>>;
  std::vector<Result> results(items.size());
  parallel_for(
      pool, items.size(), [&](std::size_t i) { results[i] = fn(items[i]); },
      grain);
  return results;
}

}  // namespace rrr::runtime
