// Versioned, checksummed frames — the on-disk unit of the state store.
//
// Every store file (snapshot or WAL) is a sequence of frames:
//
//   offset  size  field
//   0       4     magic "RRRS"
//   4       4     container format version (u32 LE, kFormatVersion)
//   8       8     kind length K (u64 LE)
//   16      K     kind (short ASCII tag, e.g. "engine", "wal.op")
//   16+K    8     payload length P (u64 LE)
//   24+K    P     payload (opaque bytes, usually an Encoder buffer)
//   24+K+P  8     FNV-1a-64 checksum over kind + payload (u64 LE)
//
// The layout is memory-mappable: MappedFile maps the file read-only and
// frame payloads are returned as string_views into the mapping, so reading
// a multi-megabyte snapshot copies nothing until a Decoder consumes it.
// Readers classify every failure: short data -> kTruncated, wrong magic ->
// kCorrupt, version != kFormatVersion -> kVersionSkew, checksum mismatch ->
// kBadChecksum. The version check is an exact match in *both* directions:
// payload layouts change between versions (v2 introduced the interned-
// attribute dictionary sections), so a frame from any other version —
// older or newer — is rejected rather than misparsed.
//
// Physical IO here optionally flows through an IoContext (io_env.h): the
// write/fsync/rename/append/read sites consult its fault environment, so a
// seeded IoFaultPlan can tear writes, flip bits, fail fsyncs, or strand
// temp files at exactly the byte the plan dictates. A null context is the
// default and costs one branch per site.
//
// Version history:
//   1  initial layout
//   2  table snapshots carry local attribute dictionaries (paths /
//      community sets as content, routes as u32 dictionary indices)
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "store/serial.h"

namespace rrr::store {

class IoContext;

inline constexpr std::uint32_t kFormatVersion = 2;
inline constexpr char kMagic[4] = {'R', 'R', 'R', 'S'};

// FNV-1a 64-bit over `data`, seedable for the two-part kind+payload sweep.
std::uint64_t fnv1a64(std::string_view data,
                      std::uint64_t seed = 0xcbf29ce484222325ULL);

// Appends one frame to `out`.
void append_frame(std::string& out, std::string_view kind,
                  std::string_view payload);

// Appends a frame whose version field is `version` instead of
// kFormatVersion — the hook the malformed-frame tests use to fabricate
// future-version frames without hand-rolling the layout.
void append_frame_versioned(std::string& out, std::string_view kind,
                            std::string_view payload, std::uint32_t version);

struct FrameView {
  std::string_view kind;
  std::string_view payload;  // points into the caller's buffer / mapping
};

// Reads the frame starting at `pos` (advancing it past the frame) or
// throws a classified StoreError. `data` must outlive the returned views.
FrameView read_frame(std::string_view data, std::size_t& pos);

// Reads every frame in `data`; throws on the first malformed one.
std::vector<FrameView> read_all_frames(std::string_view data);

// Read-only file access for frame scans: mmap(2) when available, with a
// heap-buffer fallback (the view is identical either way). Not copyable.
// With an `io` context the open is the retry unit: an injected transient
// EIO on the read site re-attempts under the context's RetryPolicy.
class MappedFile {
 public:
  explicit MappedFile(const std::string& path,
                      IoContext* io = nullptr);  // throws StoreError(kIo)
  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  std::string_view view() const { return view_; }

 private:
  void open_once(const std::string& path, IoContext* io, int attempt);

  std::string_view view_;
  void* mapping_ = nullptr;  // non-null when mmap'd
  std::size_t mapped_size_ = 0;
  std::string fallback_;  // used when mmap is unavailable
};

// Writes `data` to `path` atomically (temp file + fsync + rename), so a
// crashed checkpoint never leaves a half-written snapshot where a reader
// expects a whole one. On any reported failure the temp file is removed
// before the error propagates — only an injected crash-during-rename
// (which models the process dying, not an error the caller sees) strands
// it, and the RecoveryManager sweeps those. Retries per `io`'s policy.
void write_file_atomic(const std::string& path, std::string_view data,
                       IoContext* io = nullptr);

// Appends `data` to `path` (creating it if absent) with O_APPEND, the WAL
// write primitive. An injected torn append lands only a prefix — exactly
// the artifact a power cut leaves at the log tail. Retries per `io`.
void append_file(const std::string& path, std::string_view data,
                 IoContext* io = nullptr);

}  // namespace rrr::store
