#include "store/framing.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "store/io_env.h"

namespace rrr::store {

namespace {

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

std::uint32_t get_u32(std::string_view data, std::size_t pos) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(data[pos + i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t get_u64(std::string_view data, std::size_t pos) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(data[pos + i]))
         << (8 * i);
  }
  return v;
}

// Closes `fd` on scope exit unless released (for the fsync-then-close
// ordering the happy path needs).
struct FdGuard {
  int fd = -1;
  ~FdGuard() {
    if (fd >= 0) ::close(fd);
  }
  int release() {
    int f = fd;
    fd = -1;
    return f;
  }
};

// Unlinks the temp file of an atomic-write cycle on scope exit unless the
// cycle completed (rename published it) or an injected crash deliberately
// strands it. This is what keeps a failed checkpoint from leaking *.tmp
// litter into the store directory.
struct TmpGuard {
  std::string path;
  bool armed = true;
  ~TmpGuard() {
    if (armed) ::unlink(path.c_str());
  }
  void release() { armed = false; }
};

[[noreturn]] void throw_errno(const char* verb, const std::string& path) {
  int err = errno;
  throw StoreError(StoreError::Kind::kIo,
                   std::string("store cannot ") + verb + " '" + path +
                       "': " + std::strerror(err),
                   err == EINTR || err == EAGAIN);
}

// Reported (thrown) injected outcomes. Silent ones never reach here.
[[noreturn]] void throw_injected(const IoOutcome& outcome, IoOp op,
                                 const std::string& path) {
  const char* what =
      outcome.kind == IoOutcome::Kind::kEnospc ? "ENOSPC" : "EIO";
  throw StoreError(StoreError::Kind::kIo,
                   std::string("injected ") + what + " on " + to_string(op) +
                       " of '" + path + "'",
                   outcome.transient);
}

bool is_reported(const IoOutcome& outcome) {
  return outcome.kind == IoOutcome::Kind::kEnospc ||
         outcome.kind == IoOutcome::Kind::kEio;
}

// Applies a silent outcome to the bytes about to hit the disk: a torn
// write keeps only the prefix before the cut point, a bit flip damages one
// bit in place. `scratch` backs the mutated copy when one is needed.
std::string_view apply_silent(std::string_view data, const IoOutcome& outcome,
                              std::string& scratch) {
  if (data.empty()) return data;
  switch (outcome.kind) {
    case IoOutcome::Kind::kTornWrite:
      return data.substr(0, outcome.offset % data.size());
    case IoOutcome::Kind::kBitFlip:
      scratch.assign(data);
      scratch[outcome.offset % data.size()] ^=
          static_cast<char>(1u << (outcome.bit % 8));
      return scratch;
    default:
      return data;
  }
}

void write_all(int fd, std::string_view data, const std::string& path) {
  std::size_t done = 0;
  while (done < data.size()) {
    ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("write", path);
    }
    done += static_cast<std::size_t>(n);
  }
}

void write_file_atomic_once(const std::string& path, std::string_view data,
                            IoContext* io, int attempt) {
  const std::string tmp = path + ".tmp";
  TmpGuard guard{tmp};
  int raw_fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (raw_fd < 0) throw_errno("create", tmp);
  FdGuard fd{raw_fd};

  IoOutcome on_write =
      io ? io->consult(IoOp::kWrite, path, data.size(), attempt)
         : IoOutcome{};
  if (is_reported(on_write)) throw_injected(on_write, IoOp::kWrite, tmp);
  std::string scratch;
  write_all(fd.fd, apply_silent(data, on_write, scratch), tmp);

  IoOutcome on_fsync =
      io ? io->consult(IoOp::kFsync, path, data.size(), attempt)
         : IoOutcome{};
  if (is_reported(on_fsync)) throw_injected(on_fsync, IoOp::kFsync, tmp);
  if (::fsync(fd.fd) != 0) throw_errno("fsync", tmp);
  if (::close(fd.release()) != 0) throw_errno("close", tmp);

  IoOutcome on_rename =
      io ? io->consult(IoOp::kRename, path, data.size(), attempt)
         : IoOutcome{};
  if (on_rename.kind == IoOutcome::Kind::kCrashRename) {
    // The modeled process died between fsync and rename: the fully written
    // temp file stays behind and no snapshot is published. Deliberately
    // not an error — the caller believes the write happened, exactly like
    // the real crash; RecoveryManager sweeps the stray tmp later.
    guard.release();
    return;
  }
  if (is_reported(on_rename)) throw_injected(on_rename, IoOp::kRename, path);
  if (::rename(tmp.c_str(), path.c_str()) != 0) throw_errno("rename", tmp);
  guard.release();
}

void append_file_once(const std::string& path, std::string_view data,
                      IoContext* io, int attempt) {
  IoOutcome on_append =
      io ? io->consult(IoOp::kAppend, path, data.size(), attempt)
         : IoOutcome{};
  if (is_reported(on_append)) throw_injected(on_append, IoOp::kAppend, path);
  int raw_fd = ::open(path.c_str(),
                      O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (raw_fd < 0) throw_errno("open for append", path);
  FdGuard fd{raw_fd};
  std::string scratch;
  write_all(fd.fd, apply_silent(data, on_append, scratch), path);
  if (::close(fd.release()) != 0) throw_errno("close", path);
}

}  // namespace

std::uint64_t fnv1a64(std::string_view data, std::uint64_t seed) {
  std::uint64_t hash = seed;
  for (char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void append_frame_versioned(std::string& out, std::string_view kind,
                            std::string_view payload, std::uint32_t version) {
  out.append(kMagic, sizeof(kMagic));
  put_u32(out, version);
  put_u64(out, kind.size());
  out.append(kind.data(), kind.size());
  put_u64(out, payload.size());
  out.append(payload.data(), payload.size());
  put_u64(out, fnv1a64(payload, fnv1a64(kind)));
}

void append_frame(std::string& out, std::string_view kind,
                  std::string_view payload) {
  append_frame_versioned(out, kind, payload, kFormatVersion);
}

FrameView read_frame(std::string_view data, std::size_t& pos) {
  auto need = [&](std::size_t n, const char* what) {
    if (n > data.size() - pos) {
      throw StoreError(StoreError::Kind::kTruncated,
                       std::string("store frame truncated in ") + what);
    }
  };
  need(4, "magic");
  if (std::memcmp(data.data() + pos, kMagic, sizeof(kMagic)) != 0) {
    throw StoreError(StoreError::Kind::kCorrupt, "store frame bad magic");
  }
  pos += 4;
  need(4, "version");
  std::uint32_t version = get_u32(data, pos);
  pos += 4;
  if (version != kFormatVersion) {
    throw StoreError(StoreError::Kind::kVersionSkew,
                     "store frame written by format version " +
                         std::to_string(version) + ", this binary reads " +
                         std::to_string(kFormatVersion) + " only");
  }
  need(8, "kind length");
  std::uint64_t kind_len = get_u64(data, pos);
  pos += 8;
  need(kind_len, "kind");
  std::string_view kind = data.substr(pos, kind_len);
  pos += kind_len;
  need(8, "payload length");
  std::uint64_t payload_len = get_u64(data, pos);
  pos += 8;
  need(payload_len, "payload");
  std::string_view payload = data.substr(pos, payload_len);
  pos += payload_len;
  need(8, "checksum");
  std::uint64_t stored = get_u64(data, pos);
  pos += 8;
  if (stored != fnv1a64(payload, fnv1a64(kind))) {
    throw StoreError(StoreError::Kind::kBadChecksum,
                     "store frame checksum mismatch in kind '" +
                         std::string(kind) + "'");
  }
  return FrameView{kind, payload};
}

std::vector<FrameView> read_all_frames(std::string_view data) {
  std::vector<FrameView> frames;
  std::size_t pos = 0;
  while (pos < data.size()) {
    frames.push_back(read_frame(data, pos));
  }
  return frames;
}

MappedFile::MappedFile(const std::string& path, IoContext* io) {
  if (io == nullptr) {
    open_once(path, nullptr, 0);
    return;
  }
  io->run(IoOp::kRead, path,
          [&](int attempt) { open_once(path, io, attempt); });
}

void MappedFile::open_once(const std::string& path, IoContext* io,
                           int attempt) {
  if (io != nullptr) {
    IoOutcome on_read = io->consult(IoOp::kRead, path, 0, attempt);
    if (is_reported(on_read)) throw_injected(on_read, IoOp::kRead, path);
  }
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw StoreError(StoreError::Kind::kIo,
                     "store cannot open '" + path + "'");
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw StoreError(StoreError::Kind::kIo,
                     "store cannot stat '" + path + "'");
  }
  std::size_t size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    view_ = std::string_view();
    return;
  }
  void* mapping = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (mapping != MAP_FAILED) {
    mapping_ = mapping;
    mapped_size_ = size;
    view_ = std::string_view(static_cast<const char*>(mapping), size);
    return;
  }
  // mmap unavailable (exotic filesystem): fall back to a heap read.
  std::ifstream in(path, std::ios::binary);
  fallback_.assign(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
  if (!in && !in.eof()) {
    throw StoreError(StoreError::Kind::kIo,
                     "store cannot read '" + path + "'");
  }
  view_ = fallback_;
}

MappedFile::~MappedFile() {
  if (mapping_ != nullptr) {
    ::munmap(mapping_, mapped_size_);
  }
}

void write_file_atomic(const std::string& path, std::string_view data,
                       IoContext* io) {
  if (io == nullptr) {
    write_file_atomic_once(path, data, nullptr, 0);
    return;
  }
  io->run(IoOp::kWrite, path, [&](int attempt) {
    write_file_atomic_once(path, data, io, attempt);
  });
}

void append_file(const std::string& path, std::string_view data,
                 IoContext* io) {
  if (io == nullptr) {
    append_file_once(path, data, nullptr, 0);
    return;
  }
  io->run(IoOp::kAppend, path, [&](int attempt) {
    append_file_once(path, data, io, attempt);
  });
}

}  // namespace rrr::store
