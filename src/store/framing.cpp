#include "store/framing.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>

namespace rrr::store {

namespace {

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

std::uint32_t get_u32(std::string_view data, std::size_t pos) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(data[pos + i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t get_u64(std::string_view data, std::size_t pos) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(data[pos + i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

std::uint64_t fnv1a64(std::string_view data, std::uint64_t seed) {
  std::uint64_t hash = seed;
  for (char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void append_frame_versioned(std::string& out, std::string_view kind,
                            std::string_view payload, std::uint32_t version) {
  out.append(kMagic, sizeof(kMagic));
  put_u32(out, version);
  put_u64(out, kind.size());
  out.append(kind.data(), kind.size());
  put_u64(out, payload.size());
  out.append(payload.data(), payload.size());
  put_u64(out, fnv1a64(payload, fnv1a64(kind)));
}

void append_frame(std::string& out, std::string_view kind,
                  std::string_view payload) {
  append_frame_versioned(out, kind, payload, kFormatVersion);
}

FrameView read_frame(std::string_view data, std::size_t& pos) {
  auto need = [&](std::size_t n, const char* what) {
    if (n > data.size() - pos) {
      throw StoreError(StoreError::Kind::kTruncated,
                       std::string("store frame truncated in ") + what);
    }
  };
  need(4, "magic");
  if (std::memcmp(data.data() + pos, kMagic, sizeof(kMagic)) != 0) {
    throw StoreError(StoreError::Kind::kCorrupt, "store frame bad magic");
  }
  pos += 4;
  need(4, "version");
  std::uint32_t version = get_u32(data, pos);
  pos += 4;
  if (version != kFormatVersion) {
    throw StoreError(StoreError::Kind::kVersionSkew,
                     "store frame written by format version " +
                         std::to_string(version) + ", this binary reads " +
                         std::to_string(kFormatVersion) + " only");
  }
  need(8, "kind length");
  std::uint64_t kind_len = get_u64(data, pos);
  pos += 8;
  need(kind_len, "kind");
  std::string_view kind = data.substr(pos, kind_len);
  pos += kind_len;
  need(8, "payload length");
  std::uint64_t payload_len = get_u64(data, pos);
  pos += 8;
  need(payload_len, "payload");
  std::string_view payload = data.substr(pos, payload_len);
  pos += payload_len;
  need(8, "checksum");
  std::uint64_t stored = get_u64(data, pos);
  pos += 8;
  if (stored != fnv1a64(payload, fnv1a64(kind))) {
    throw StoreError(StoreError::Kind::kBadChecksum,
                     "store frame checksum mismatch in kind '" +
                         std::string(kind) + "'");
  }
  return FrameView{kind, payload};
}

std::vector<FrameView> read_all_frames(std::string_view data) {
  std::vector<FrameView> frames;
  std::size_t pos = 0;
  while (pos < data.size()) {
    frames.push_back(read_frame(data, pos));
  }
  return frames;
}

MappedFile::MappedFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw StoreError(StoreError::Kind::kIo,
                     "store cannot open '" + path + "'");
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw StoreError(StoreError::Kind::kIo,
                     "store cannot stat '" + path + "'");
  }
  std::size_t size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    view_ = std::string_view();
    return;
  }
  void* mapping = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (mapping != MAP_FAILED) {
    mapping_ = mapping;
    mapped_size_ = size;
    view_ = std::string_view(static_cast<const char*>(mapping), size);
    return;
  }
  // mmap unavailable (exotic filesystem): fall back to a heap read.
  std::ifstream in(path, std::ios::binary);
  fallback_.assign(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
  if (!in && !in.eof()) {
    throw StoreError(StoreError::Kind::kIo,
                     "store cannot read '" + path + "'");
  }
  view_ = fallback_;
}

MappedFile::~MappedFile() {
  if (mapping_ != nullptr) {
    ::munmap(mapping_, mapped_size_);
  }
}

void write_file_atomic(const std::string& path, std::string_view data) {
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    out.flush();
    if (!out) {
      throw StoreError(StoreError::Kind::kIo,
                       "store cannot write '" + tmp + "'");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw StoreError(StoreError::Kind::kIo,
                     "store cannot rename '" + tmp + "' to '" + path + "'");
  }
}

}  // namespace rrr::store
