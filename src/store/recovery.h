// Self-healing for a damaged checkpoint directory.
//
// A crash — real or injected — leaves one of a small set of artifacts
// behind: a stranded `*.tmp` from an interrupted atomic-write cycle, a
// snapshot whose frames no longer checksum (torn write, bit flip), or a
// WAL whose tail is garbage because the process died mid-append. The
// RecoveryManager turns any such directory back into one the resume path
// can load without manual intervention:
//
//   1. Stray `*.tmp` files are swept into `corrupt/` (they were never
//      published; nothing may ever read them as live state).
//   2. The WAL is scanned frame by frame; at the first frame that fails
//      to parse, the log is truncated to the last good byte and the bad
//      tail is preserved in `corrupt/`. This is exactly crash semantics:
//      bytes after a torn append are garbage, and every op before the
//      tear is intact and kept.
//   3. Every snapshot is validated newest -> oldest by actually parsing
//      it (frames, header, section decode). A snapshot that throws any
//      classified StoreError — or whose writer fingerprint disagrees with
//      the expected one, or whose recorded WalPosition the truncated log
//      can no longer satisfy — is *quarantined*: moved into `corrupt/`,
//      never deleted, never silently read. The newest survivor becomes
//      the resume anchor; when none survives, the resume is a cold start.
//
// The scrub is idempotent — running it on a healthy directory moves
// nothing and reports the newest snapshot. All physical IO flows through
// the optional IoContext, so a scrub itself runs under the same fault
// environment and retry policy as normal store traffic.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace rrr::store {

class IoContext;

// What one scrub pass found and did. `quarantined` holds the basenames
// (as moved into corrupt/) in the order they were quarantined.
struct RecoveryReport {
  std::vector<std::string> quarantined;
  int stray_tmp = 0;              // *.tmp files swept into corrupt/
  int snapshots_quarantined = 0;  // snapshots that failed validation
  std::optional<std::int64_t> snapshot;  // newest snapshot that validated
  bool wal_truncated = false;
  std::uint64_t wal_valid_bytes = 0;  // WAL length after the scrub
  std::size_t wal_ops = 0;            // ops that survive in the WAL

  bool clean() const {
    return quarantined.empty() && !wal_truncated;
  }
};

class RecoveryManager {
 public:
  // `io` (optional) carries the fault environment and retry policy for
  // the scrub's own reads and rewrites.
  explicit RecoveryManager(std::string dir, IoContext* io = nullptr)
      : dir_(std::move(dir)), io_(io) {}

  // Scrubs the directory as described above. When `expected_fingerprint`
  // is nonzero, snapshots written under any other fingerprint are
  // quarantined too (a mixed-config directory must not feed a resume).
  // Throws StoreError only for environment-level failures (an unreadable
  // directory, a quarantine move that fails) — per-artifact corruption is
  // handled, not propagated.
  RecoveryReport scrub(std::uint64_t expected_fingerprint = 0);

  // Step 1 of the scrub alone: sweeps stray `*.tmp` files into corrupt/
  // without touching snapshots or the WAL. Cheap (no frame validation),
  // so a successful supervised run can tidy the debris of absorbed
  // crash-rename faults without re-reading every snapshot.
  RecoveryReport sweep_stray_tmp();

  const std::string& dir() const { return dir_; }
  // Where quarantined artifacts land ("<dir>/corrupt").
  std::string quarantine_dir() const { return dir_ + "/corrupt"; }

 private:
  // Moves `path` (a live file in dir_) into corrupt/, uniquifying the
  // name on collision. Returns the basename it landed under.
  std::string quarantine(const std::string& path);

  std::string dir_;
  IoContext* io_;
};

}  // namespace rrr::store
