// The storage fault model and retry layer of the state store.
//
// Every physical IO the store performs — snapshot writes, WAL appends,
// fsyncs, renames, snapshot/WAL reads — flows through an optional
// `IoContext`. The context does two jobs:
//
//   1. It consults an `IoEnv` (when one is installed) before each physical
//      attempt. The env can dictate a fault outcome for the attempt: a
//      *reported* error (ENOSPC / EIO, thrown as a classified, possibly
//      transient StoreError) or a *silent* crash artifact (a torn write
//      truncated at byte k, a flipped bit, a rename that "crashes" leaving
//      the temp file stranded). Silent faults succeed from the caller's
//      point of view — exactly like real storage, the damage is only
//      discoverable at read time through the frame checksums, which is
//      what the RecoveryManager (recovery.h) exists to handle.
//
//   2. It drives a bounded-exponential-backoff `RetryPolicy` around each
//      logical operation: a thrown StoreError with transient() set is
//      retried (after a jittered delay drawn from a dedicated Rng::split
//      stream) until the attempt cap or the per-op delay budget runs out.
//      Only transient errors retry; corruption kinds and permanent IO
//      errors surface immediately.
//
// The production `IoEnv` implementation is fault::IoFaultInjector
// (src/fault/io_plan.h), which interprets a seeded, declarative
// IoFaultPlan deterministically — the store layer itself knows nothing
// about fault plans, only about outcomes. A null IoContext (the default
// everywhere) costs one branch.
//
// Determinism: store IO runs on the serial driver thread, so env
// consultations happen in a reproducible order, and the retry budget is
// accounted in *planned* backoff time (the sum of the delays the policy
// chose), never wall-clock — a loaded machine retries exactly as often as
// an idle one.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "netbase/rng.h"
#include "store/serial.h"

namespace rrr::obs {
class Counter;
class MetricsRegistry;
class TraceRecorder;
}  // namespace rrr::obs

namespace rrr::store {

// Physical operation sites the environment can intercept.
enum class IoOp : std::uint8_t {
  kWrite = 0,  // payload write of an atomic temp-file cycle
  kFsync = 1,  // fsync before the publishing rename
  kRename = 2, // the publishing rename itself
  kAppend = 3, // append to a log file (the WAL)
  kRead = 4,   // open/map of a store file
};
const char* to_string(IoOp op);

// What the environment dictates for one physical attempt.
struct IoOutcome {
  enum class Kind : std::uint8_t {
    kOk = 0,
    kTornWrite = 1,    // silent: only the first `offset % size` bytes land
    kBitFlip = 2,      // silent: bit `bit` of byte `offset % size` flips
    kEnospc = 3,       // reported: "no space left on device"
    kEio = 4,          // reported: generic device error
    kCrashRename = 5,  // silent: temp file fully written, rename never ran
  };
  Kind kind = Kind::kOk;
  std::uint64_t offset = 0;  // torn-write cut point / bit-flip byte
  std::uint8_t bit = 0;      // bit index for kBitFlip
  bool transient = false;    // reported errors only: a retry may succeed
};

// Fault-dictating environment. `attempt` is the 0-based retry index of the
// logical operation; implementations draw a fresh decision at attempt 0
// and replay (or clear, for transient faults) the cached one on retries.
class IoEnv {
 public:
  virtual ~IoEnv() = default;
  virtual IoOutcome on_op(IoOp op, std::string_view path, std::uint64_t size,
                          int attempt) = 0;
};

// Bounded exponential backoff with jitter for transient IO errors.
// max_attempts = 1 disables retrying entirely (the default: opt-in).
struct RetryPolicy {
  int max_attempts = 1;
  std::int64_t base_delay_us = 200;    // first retry delay, doubled per retry
  std::int64_t max_delay_us = 20000;   // per-retry delay cap
  double jitter = 0.5;                 // fraction of each delay randomized
  std::int64_t op_budget_us = 1000000; // total planned backoff per logical op
  std::uint64_t seed = 1;              // jitter stream seed

  // Canonical "key=value,..." spec (only non-default clauses) / parser.
  // Keys: attempts, base_us, max_us, jitter, budget_us, seed. Unknown keys
  // or out-of-range values yield nullopt; "" is the default policy.
  std::string spec() const;
  static std::optional<RetryPolicy> parse(std::string_view spec);
};

// Plain tallies mirroring the rrr_io_* counters, for tests and harnesses.
struct IoStats {
  std::int64_t attempts = 0;            // physical attempts, all ops
  std::int64_t retries = 0;             // attempts beyond the first
  std::int64_t transient_errors = 0;    // transient failures seen
  std::int64_t permanent_errors = 0;    // non-transient failures seen
  std::int64_t gave_up = 0;             // logical ops that exhausted retries
  std::int64_t backoff_us = 0;          // planned backoff actually slept
  std::int64_t injected_torn = 0;
  std::int64_t injected_bitflip = 0;
  std::int64_t injected_enospc = 0;
  std::int64_t injected_eio = 0;
  std::int64_t injected_crash_rename = 0;
};

class IoContext {
 public:
  explicit IoContext(RetryPolicy policy = {}, IoEnv* env = nullptr);

  // Registers the rrr_io_* runtime counters. Injection and retrying only
  // touch the runtime domain: the semantic snapshot is byte-identical with
  // any fault plan, which is the chaos harness's acceptance bar.
  void set_metrics(obs::MetricsRegistry& registry);
  // Injected faults and retry give-ups become instant events on the
  // calling thread's track ("io_fault" / "io_gave_up", cat "store").
  void set_tracer(obs::TraceRecorder* tracer) { tracer_ = tracer; }

  IoEnv* env() const { return env_; }
  const RetryPolicy& policy() const { return policy_; }
  const IoStats& stats() const { return stats_; }

  // Consults the env for one physical attempt (kOk when no env) and
  // tallies whatever it injected. Called by the framing layer at each
  // physical site.
  IoOutcome consult(IoOp op, std::string_view path, std::uint64_t size,
                    int attempt);

  // Runs `attempt_fn(attempt_index)` under the retry policy: a StoreError
  // with transient() set is swallowed and re-attempted after a jittered
  // exponential delay while attempts and the planned-delay budget last;
  // the final failure (or any permanent error) propagates to the caller.
  void run(IoOp op, std::string_view path,
           const std::function<void(int)>& attempt_fn);

 private:
  void note_failure(IoOp op, const StoreError& error);

  RetryPolicy policy_;
  IoEnv* env_;
  Rng jitter_;
  IoStats stats_;
  obs::TraceRecorder* tracer_ = nullptr;
  obs::Counter* obs_attempts_ = nullptr;
  obs::Counter* obs_retries_ = nullptr;
  obs::Counter* obs_transient_ = nullptr;
  obs::Counter* obs_permanent_ = nullptr;
  obs::Counter* obs_gave_up_ = nullptr;
  obs::Counter* obs_injected_ = nullptr;
};

}  // namespace rrr::store
