#include "store/recovery.h"

#include <algorithm>
#include <filesystem>
#include <string_view>

#include "store/checkpoint.h"
#include "store/framing.h"
#include "store/io_env.h"
#include "store/serial.h"

namespace rrr::store {

namespace fs = std::filesystem;

namespace {

// Parses one WAL frame at `pos`, including the op payload decode, so a
// checksummed-but-undecodable frame truncates the log just like a torn
// one. Throws StoreError on any defect.
void parse_wal_frame(std::string_view data, std::size_t& pos) {
  FrameView frame = read_frame(data, pos);
  if (frame.kind != "wal.op") {
    throw StoreError(StoreError::Kind::kCorrupt,
                     "wal.log contains a non-op frame");
  }
  Decoder dec(frame.payload);
  dec.i64();  // clock
  dec.u8();   // point
  dec.str();  // type
  dec.str();  // payload
  dec.expect_done();
}

}  // namespace

std::string RecoveryManager::quarantine(const std::string& path) {
  ensure_dir(quarantine_dir());
  std::string base = fs::path(path).filename().string();
  std::string target = quarantine_dir() + "/" + base;
  std::error_code ec;
  for (int suffix = 1; fs::exists(target, ec); ++suffix) {
    target = quarantine_dir() + "/" + base + "." + std::to_string(suffix);
  }
  fs::rename(path, target, ec);
  if (ec) {
    throw StoreError(StoreError::Kind::kIo,
                     "recovery cannot quarantine '" + path + "': " +
                         ec.message());
  }
  return fs::path(target).filename().string();
}

RecoveryReport RecoveryManager::sweep_stray_tmp() {
  RecoveryReport report;
  std::error_code ec;
  if (!fs::is_directory(dir_, ec)) return report;
  // Collect first: quarantining mutates the directory under the iterator.
  std::vector<std::string> stray;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    std::string name = entry.path().filename().string();
    if (name.size() > 4 && name.ends_with(".tmp")) {
      stray.push_back(entry.path().string());
    }
  }
  std::sort(stray.begin(), stray.end());
  for (const std::string& path : stray) {
    report.quarantined.push_back(quarantine(path));
    ++report.stray_tmp;
  }
  return report;
}

RecoveryReport RecoveryManager::scrub(std::uint64_t expected_fingerprint) {
  RecoveryReport report;
  std::error_code ec;
  if (!fs::is_directory(dir_, ec)) return report;

  // 1. Stray temp files from interrupted atomic-write cycles.
  RecoveryReport swept = sweep_stray_tmp();
  report.quarantined = std::move(swept.quarantined);
  report.stray_tmp = swept.stray_tmp;

  // 2. Truncate the WAL at the first frame that fails to parse. This runs
  // before snapshot validation: a snapshot is only usable when the log's
  // surviving prefix satisfies the snapshot's recorded WalPosition, so the
  // log must reach its final shape first.
  const std::string wal_path = dir_ + "/wal.log";
  if (fs::exists(wal_path, ec)) {
    std::string_view data;
    MappedFile file(wal_path, io_);
    data = file.view();
    std::size_t good_end = 0;
    std::size_t ops = 0;
    while (good_end < data.size()) {
      std::size_t pos = good_end;
      try {
        parse_wal_frame(data, pos);
      } catch (const StoreError&) {
        break;
      }
      good_end = pos;
      ++ops;
    }
    report.wal_valid_bytes = good_end;
    report.wal_ops = ops;
    if (good_end < data.size()) {
      // Preserve the severed tail, then rewrite the log to the good
      // prefix. The tail file name records where the cut happened.
      std::string tail_name =
          "wal.tail-" + std::to_string(good_end) + ".corrupt";
      std::string tail_path = dir_ + "/" + tail_name;
      write_file_atomic(tail_path, data.substr(good_end), io_);
      std::string prefix(data.substr(0, good_end));
      // `data` views the mapping of the old log; copy before replacing.
      write_file_atomic(wal_path, prefix, io_);
      report.quarantined.push_back(quarantine(tail_path));
      report.wal_truncated = true;
    }
  }

  // 3. Validate every snapshot, newest first, by parsing it in full. A
  // snapshot whose WalPosition the surviving log cannot satisfy is as
  // corrupt as a bad checksum: the resume path regenerates the world side
  // by replaying exactly those ops, so pairing the snapshot with a
  // shorter or different log would produce a silently wrong world.
  std::vector<WalOp> surviving_ops = wal_read(dir_, io_);
  std::vector<std::int64_t> snaps = list_snapshots(dir_);
  for (auto it = snaps.rbegin(); it != snaps.rend(); ++it) {
    const std::string path = dir_ + "/" + snapshot_name(*it);
    bool ok = false;
    try {
      SnapshotReader reader(dir_, *it, io_);
      ok = expected_fingerprint == 0 ||
           reader.fingerprint() == expected_fingerprint;
      if (ok && reader.has_section(kWalPositionSection)) {
        WalPosition pos =
            decode_wal_position(reader.section(kWalPositionSection));
        ok = wal_position_consistent(pos, surviving_ops);
      }
    } catch (const StoreError&) {
      ok = false;
    }
    if (ok) {
      if (!report.snapshot) report.snapshot = *it;
    } else {
      report.quarantined.push_back(quarantine(path));
      ++report.snapshots_quarantined;
    }
  }
  return report;
}

}  // namespace rrr::store
