#include "store/io_env.h"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace rrr::store {

namespace {

std::optional<double> parse_double(std::string_view text) {
  std::string buffer(text);
  char* end = nullptr;
  double value = std::strtod(buffer.c_str(), &end);
  if (end != buffer.c_str() + buffer.size() || buffer.empty()) {
    return std::nullopt;
  }
  return value;
}

std::optional<std::int64_t> parse_int(std::string_view text) {
  std::int64_t value = 0;
  auto [p, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || p != text.data() + text.size()) {
    return std::nullopt;
  }
  return value;
}

void emit(std::ostringstream& out, bool& first, std::string_view key,
          const std::string& value) {
  if (!first) out << ',';
  first = false;
  out << key << '=' << value;
}

}  // namespace

const char* to_string(IoOp op) {
  switch (op) {
    case IoOp::kWrite: return "write";
    case IoOp::kFsync: return "fsync";
    case IoOp::kRename: return "rename";
    case IoOp::kAppend: return "append";
    case IoOp::kRead: return "read";
  }
  return "unknown";
}

std::string RetryPolicy::spec() const {
  RetryPolicy defaults;
  std::ostringstream out;
  bool first = true;
  if (max_attempts != defaults.max_attempts) {
    emit(out, first, "attempts", std::to_string(max_attempts));
  }
  if (base_delay_us != defaults.base_delay_us) {
    emit(out, first, "base_us", std::to_string(base_delay_us));
  }
  if (max_delay_us != defaults.max_delay_us) {
    emit(out, first, "max_us", std::to_string(max_delay_us));
  }
  if (jitter != defaults.jitter) {
    std::ostringstream j;
    j << jitter;
    emit(out, first, "jitter", j.str());
  }
  if (op_budget_us != defaults.op_budget_us) {
    emit(out, first, "budget_us", std::to_string(op_budget_us));
  }
  if (seed != defaults.seed) emit(out, first, "seed", std::to_string(seed));
  return out.str();
}

std::optional<RetryPolicy> RetryPolicy::parse(std::string_view spec) {
  RetryPolicy policy;
  std::size_t start = 0;
  while (start < spec.size()) {
    std::size_t comma = spec.find(',', start);
    std::string_view clause = spec.substr(
        start, comma == std::string_view::npos ? std::string_view::npos
                                               : comma - start);
    start = comma == std::string_view::npos ? spec.size() : comma + 1;
    if (clause.empty()) continue;
    std::size_t eq = clause.find('=');
    if (eq == std::string_view::npos) return std::nullopt;
    std::string_view key = clause.substr(0, eq);
    std::string_view value = clause.substr(eq + 1);

    bool ok = false;
    if (key == "attempts") {
      auto v = parse_int(value);
      ok = v && *v >= 1;
      if (ok) policy.max_attempts = static_cast<int>(*v);
    } else if (key == "base_us") {
      auto v = parse_int(value);
      ok = v && *v >= 0;
      if (ok) policy.base_delay_us = *v;
    } else if (key == "max_us") {
      auto v = parse_int(value);
      ok = v && *v >= 0;
      if (ok) policy.max_delay_us = *v;
    } else if (key == "jitter") {
      auto v = parse_double(value);
      ok = v && *v >= 0.0 && *v <= 1.0;
      if (ok) policy.jitter = *v;
    } else if (key == "budget_us") {
      auto v = parse_int(value);
      ok = v && *v >= 0;
      if (ok) policy.op_budget_us = *v;
    } else if (key == "seed") {
      auto v = parse_int(value);
      ok = v && *v >= 0;
      if (ok) policy.seed = static_cast<std::uint64_t>(*v);
    }
    if (!ok) return std::nullopt;
  }
  return policy;
}

IoContext::IoContext(RetryPolicy policy, IoEnv* env)
    : policy_(policy), env_(env), jitter_(Rng(policy.seed).split(0x10)) {}

void IoContext::set_metrics(obs::MetricsRegistry& registry) {
  constexpr auto kRt = obs::Domain::kRuntime;
  obs_attempts_ = &registry.counter("rrr_io_attempts_total", {}, kRt,
                                    "physical store IO attempts");
  obs_retries_ = &registry.counter("rrr_io_retries_total", {}, kRt,
                                   "store IO attempts beyond the first");
  obs_transient_ =
      &registry.counter("rrr_io_transient_errors_total", {}, kRt,
                        "transient-classified store IO failures");
  obs_permanent_ =
      &registry.counter("rrr_io_permanent_errors_total", {}, kRt,
                        "permanent store IO failures");
  obs_gave_up_ = &registry.counter(
      "rrr_io_gave_up_total", {}, kRt,
      "logical store ops that exhausted the retry budget");
  obs_injected_ = &registry.counter("rrr_io_injected_faults_total", {}, kRt,
                                    "faults injected by the io fault plan");
}

IoOutcome IoContext::consult(IoOp op, std::string_view path,
                             std::uint64_t size, int attempt) {
  if (env_ == nullptr) return IoOutcome{};
  IoOutcome outcome = env_->on_op(op, path, size, attempt);
  switch (outcome.kind) {
    case IoOutcome::Kind::kOk:
      return outcome;
    case IoOutcome::Kind::kTornWrite: ++stats_.injected_torn; break;
    case IoOutcome::Kind::kBitFlip: ++stats_.injected_bitflip; break;
    case IoOutcome::Kind::kEnospc: ++stats_.injected_enospc; break;
    case IoOutcome::Kind::kEio: ++stats_.injected_eio; break;
    case IoOutcome::Kind::kCrashRename:
      ++stats_.injected_crash_rename;
      break;
  }
  obs::inc(obs_injected_);
  if (tracer_ != nullptr) tracer_->instant("io_fault", "store");
  return outcome;
}

void IoContext::note_failure(IoOp op, const StoreError& error) {
  (void)op;
  if (error.transient()) {
    ++stats_.transient_errors;
    obs::inc(obs_transient_);
  } else {
    ++stats_.permanent_errors;
    obs::inc(obs_permanent_);
  }
}

void IoContext::run(IoOp op, std::string_view path,
                    const std::function<void(int)>& attempt_fn) {
  (void)path;
  std::int64_t planned_us = 0;
  for (int attempt = 0;; ++attempt) {
    ++stats_.attempts;
    obs::inc(obs_attempts_);
    if (attempt > 0) {
      ++stats_.retries;
      obs::inc(obs_retries_);
    }
    try {
      attempt_fn(attempt);
      return;
    } catch (const StoreError& error) {
      note_failure(op, error);
      const bool more_attempts = attempt + 1 < policy_.max_attempts;
      if (!error.transient() || !more_attempts) {
        if (error.transient() && !more_attempts) {
          ++stats_.gave_up;
          obs::inc(obs_gave_up_);
          if (tracer_ != nullptr) tracer_->instant("io_gave_up", "store");
        }
        throw;
      }
      // Bounded exponential backoff: base * 2^attempt capped at max, with
      // `jitter` of the delay randomized from the dedicated stream. The
      // budget is accounted in planned microseconds so a loaded machine
      // retries exactly as often as an idle one.
      std::int64_t delay = policy_.base_delay_us;
      for (int i = 0; i < attempt && delay < policy_.max_delay_us; ++i) {
        delay *= 2;
      }
      delay = std::min(delay, policy_.max_delay_us);
      if (policy_.jitter > 0.0 && delay > 0) {
        const double scale =
            1.0 - policy_.jitter + policy_.jitter * jitter_.uniform();
        delay = std::max<std::int64_t>(
            0, static_cast<std::int64_t>(static_cast<double>(delay) * scale));
      }
      if (planned_us + delay > policy_.op_budget_us) {
        ++stats_.gave_up;
        obs::inc(obs_gave_up_);
        if (tracer_ != nullptr) tracer_->instant("io_gave_up", "store");
        throw;
      }
      planned_us += delay;
      stats_.backoff_us += delay;
      if (delay > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(delay));
      }
    }
  }
}

}  // namespace rrr::store
