// Encoder/Decoder adapters for the netbase value types, shared by every
// checkpointable class above the store layer. Higher-level composites
// (records, traces, pair keys) encode their fields with these primitives
// at their own layer — the store knows nothing about them.
#pragma once

#include <optional>

#include "netbase/asn.h"
#include "netbase/community.h"
#include "netbase/ipv4.h"
#include "netbase/prefix.h"
#include "netbase/time.h"
#include "store/serial.h"

namespace rrr::store {

inline void put(Encoder& enc, Ipv4 ip) { enc.u32(ip.value()); }
inline Ipv4 get_ipv4(Decoder& dec) { return Ipv4(dec.u32()); }

inline void put(Encoder& enc, Prefix prefix) {
  enc.u32(prefix.network().value());
  enc.u8(prefix.length());
}
inline Prefix get_prefix(Decoder& dec) {
  Ipv4 network(dec.u32());
  return Prefix(network, dec.u8());
}

inline void put(Encoder& enc, TimePoint t) { enc.i64(t.seconds()); }
inline TimePoint get_time(Decoder& dec) { return TimePoint(dec.i64()); }

inline void put(Encoder& enc, Asn asn) { enc.u32(asn.number()); }
inline Asn get_asn(Decoder& dec) { return Asn(dec.u32()); }

inline void put(Encoder& enc, const AsPath& path) {
  enc.u64(path.size());
  for (Asn asn : path) put(enc, asn);
}
inline AsPath get_as_path(Decoder& dec) {
  AsPath path;
  std::uint64_t n = dec.u64();
  path.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) path.push_back(get_asn(dec));
  return path;
}

inline void put(Encoder& enc, Community community) {
  enc.u32(community.raw());
}
inline Community get_community(Decoder& dec) { return Community(dec.u32()); }

inline void put(Encoder& enc, const CommunitySet& communities) {
  enc.u64(communities.size());
  for (Community c : communities) put(enc, c);
}
inline CommunitySet get_community_set(Decoder& dec) {
  CommunitySet out;
  std::uint64_t n = dec.u64();
  for (std::uint64_t i = 0; i < n; ++i) out.insert(get_community(dec));
  return out;
}

inline void put(Encoder& enc, const std::optional<Ipv4>& ip) {
  enc.boolean(ip.has_value());
  if (ip) put(enc, *ip);
}
inline std::optional<Ipv4> get_opt_ipv4(Decoder& dec) {
  if (!dec.boolean()) return std::nullopt;
  return get_ipv4(dec);
}

}  // namespace rrr::store
