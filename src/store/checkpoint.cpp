#include "store/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

namespace rrr::store {

namespace fs = std::filesystem;

namespace {
constexpr std::string_view kSnapshotKind = "rrr.snapshot";
constexpr std::string_view kSectionKind = "rrr.section";
constexpr std::string_view kWalKind = "wal.op";
}  // namespace

std::string snapshot_name(std::int64_t completed_windows) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "snap-%08lld",
                static_cast<long long>(completed_windows));
  return buf;
}

std::vector<std::int64_t> list_snapshots(const std::string& dir) {
  std::vector<std::int64_t> out;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    std::string name = entry.path().filename().string();
    if (name.rfind("snap-", 0) != 0) continue;
    errno = 0;
    char* end = nullptr;
    long long v = std::strtoll(name.c_str() + 5, &end, 10);
    if (end == name.c_str() + 5 || *end != '\0' || errno != 0) continue;
    out.push_back(v);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<std::int64_t> latest_snapshot(const std::string& dir,
                                            std::int64_t limit) {
  std::optional<std::int64_t> best;
  for (std::int64_t c : list_snapshots(dir)) {
    if (limit >= 0 && c > limit) break;
    best = c;
  }
  return best;
}

void SnapshotWriter::add_section(std::string name, std::string payload) {
  sections_.emplace_back(std::move(name), std::move(payload));
}

std::string SnapshotWriter::write(const std::string& dir,
                                  IoContext* io) const {
  Encoder header;
  header.i64(completed_);
  header.u64(fingerprint_);
  header.u64(sections_.size());
  std::string data;
  append_frame(data, kSnapshotKind, header.buffer());
  for (const auto& [name, payload] : sections_) {
    Encoder section;
    section.str(name);
    section.str(payload);
    append_frame(data, kSectionKind, section.buffer());
  }
  std::string path = dir + "/" + snapshot_name(completed_);
  write_file_atomic(path, data, io);
  return path;
}

SnapshotReader::SnapshotReader(const std::string& dir,
                               std::int64_t completed_windows, IoContext* io)
    : file_(dir + "/" + snapshot_name(completed_windows), io) {
  std::vector<FrameView> frames = read_all_frames(file_.view());
  if (frames.empty() || frames.front().kind != kSnapshotKind) {
    throw StoreError(StoreError::Kind::kCorrupt,
                     "snapshot missing header frame");
  }
  Decoder header(frames.front().payload);
  completed_ = header.i64();
  fingerprint_ = header.u64();
  std::uint64_t count = header.u64();
  header.expect_done();
  if (completed_ != completed_windows) {
    throw StoreError(StoreError::Kind::kCorrupt,
                     "snapshot header window count disagrees with filename");
  }
  if (count != frames.size() - 1) {
    throw StoreError(StoreError::Kind::kTruncated,
                     "snapshot section count disagrees with frame count");
  }
  for (std::size_t i = 1; i < frames.size(); ++i) {
    if (frames[i].kind != kSectionKind) {
      throw StoreError(StoreError::Kind::kCorrupt,
                       "snapshot contains a non-section frame");
    }
    Decoder section(frames[i].payload);
    std::string_view name = section.str();
    std::string_view payload = section.str();
    section.expect_done();
    sections_.emplace(std::string(name), payload);
  }
}

std::string_view SnapshotReader::section(const std::string& name) const {
  auto it = sections_.find(name);
  if (it == sections_.end()) {
    throw StoreError(StoreError::Kind::kCorrupt,
                     "snapshot missing section '" + name + "'");
  }
  return it->second;
}

std::string encode_wal_op(const WalOp& op) {
  Encoder enc;
  enc.i64(op.clock);
  enc.u8(op.point);
  enc.str(op.type);
  enc.str(op.payload);
  return enc.take();
}

std::uint64_t chain_wal_digest(std::uint64_t digest, const WalOp& op) {
  return fnv1a64(encode_wal_op(op), digest);
}

WalPosition wal_position_of(const std::vector<WalOp>& ops,
                            std::size_t count) {
  WalPosition pos;
  for (std::size_t i = 0; i < count && i < ops.size(); ++i) {
    pos.digest = chain_wal_digest(pos.digest, ops[i]);
    ++pos.count;
  }
  return pos;
}

bool wal_position_consistent(const WalPosition& pos,
                             const std::vector<WalOp>& ops) {
  if (pos.count > ops.size()) return false;
  return wal_position_of(ops, pos.count).digest == pos.digest;
}

std::string encode_wal_position(const WalPosition& pos) {
  Encoder enc;
  enc.u64(pos.count);
  enc.u64(pos.digest);
  return enc.take();
}

WalPosition decode_wal_position(std::string_view payload) {
  Decoder dec(payload);
  WalPosition pos;
  pos.count = dec.u64();
  pos.digest = dec.u64();
  dec.expect_done();
  return pos;
}

void wal_append(const std::string& dir, const WalOp& op, IoContext* io) {
  std::string frame;
  append_frame(frame, kWalKind, encode_wal_op(op));
  append_file(dir + "/wal.log", frame, io);
}

std::vector<WalOp> wal_read(const std::string& dir, IoContext* io) {
  std::string path = dir + "/wal.log";
  std::error_code ec;
  if (!fs::exists(path, ec)) return {};
  MappedFile file(path, io);
  std::vector<WalOp> ops;
  for (const FrameView& frame : read_all_frames(file.view())) {
    if (frame.kind != kWalKind) {
      throw StoreError(StoreError::Kind::kCorrupt,
                       "wal.log contains a non-op frame");
    }
    Decoder dec(frame.payload);
    WalOp op;
    op.clock = dec.i64();
    op.point = dec.u8();
    op.type = std::string(dec.str());
    op.payload = std::string(dec.str());
    dec.expect_done();
    ops.push_back(std::move(op));
  }
  return ops;
}

void wal_rewrite(const std::string& dir, const std::vector<WalOp>& ops,
                 IoContext* io) {
  std::string data;
  for (const WalOp& op : ops) {
    append_frame(data, kWalKind, encode_wal_op(op));
  }
  write_file_atomic(dir + "/wal.log", data, io);
}

void ensure_dir(const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec && !fs::is_directory(dir)) {
    throw StoreError(StoreError::Kind::kIo,
                     "store cannot create directory '" + dir + "'");
  }
}

}  // namespace rrr::store
