#include "store/serial.h"

#include <bit>

namespace rrr::store {

const char* to_string(StoreError::Kind kind) {
  switch (kind) {
    case StoreError::Kind::kTruncated: return "truncated";
    case StoreError::Kind::kBadChecksum: return "bad-checksum";
    case StoreError::Kind::kVersionSkew: return "version-skew";
    case StoreError::Kind::kCorrupt: return "corrupt";
    case StoreError::Kind::kIo: return "io";
  }
  return "unknown";
}

void Encoder::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

double Decoder::f64() { return std::bit_cast<double>(u64()); }

void Decoder::expect_done() const {
  if (!done()) {
    throw StoreError(StoreError::Kind::kCorrupt,
                     "store payload has trailing bytes");
  }
}

}  // namespace rrr::store
