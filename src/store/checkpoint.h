// The log-structured checkpoint directory: periodic full snapshots plus a
// WAL of per-window exogenous operations.
//
// Layout of a checkpoint directory:
//
//   snap-00000042        full snapshot after 42 completed windows
//   snap-00000084        ... one per checkpoint_every windows
//   wal.log              append-only op log covering the whole run
//
// A snapshot file is a header frame ("rrr.snapshot": completed-window
// count, writer fingerprint, section count) followed by one frame per
// named section ("engine", "patcher", "metrics", ...). Sections are opaque
// Encoder payloads owned by the checkpointed classes; the container knows
// nothing about their contents. The WAL is a sequence of "wal.op" frames,
// each tagged with the window clock and replay point at which the op must
// be re-applied (eval/world.cpp's resume loop is the interpreter).
//
// Resuming at window k uses the newest snapshot with completed <= k and
// replays the WAL tail (ops with clock in (snapshot, k]) live. Every decode
// failure surfaces as a classified StoreError — a corrupted, truncated, or
// future-version snapshot is a clean error, never UB.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "store/framing.h"
#include "store/serial.h"

namespace rrr::store {

// Snapshot filename for a completed-window count, e.g. "snap-00000042".
std::string snapshot_name(std::int64_t completed_windows);

// Completed-window counts of every snapshot in `dir`, ascending.
std::vector<std::int64_t> list_snapshots(const std::string& dir);

// The newest snapshot with completed <= limit (limit < 0: no limit).
std::optional<std::int64_t> latest_snapshot(const std::string& dir,
                                            std::int64_t limit = -1);

class SnapshotWriter {
 public:
  // `fingerprint` identifies the writing configuration (the world params
  // digest); readers refuse to resume under a different one.
  SnapshotWriter(std::int64_t completed_windows, std::uint64_t fingerprint)
      : completed_(completed_windows), fingerprint_(fingerprint) {}

  void add_section(std::string name, std::string payload);

  // Assembles the snapshot and writes it atomically into `dir` (which must
  // exist). Returns the file path. Physical IO flows through `io` when one
  // is given (fault injection + retries; see io_env.h).
  std::string write(const std::string& dir, IoContext* io = nullptr) const;

 private:
  std::int64_t completed_;
  std::uint64_t fingerprint_;
  std::vector<std::pair<std::string, std::string>> sections_;
};

class SnapshotReader {
 public:
  // Maps and validates `dir/snap-<completed>`.
  SnapshotReader(const std::string& dir, std::int64_t completed_windows,
                 IoContext* io = nullptr);

  std::int64_t completed_windows() const { return completed_; }
  std::uint64_t fingerprint() const { return fingerprint_; }

  bool has_section(const std::string& name) const {
    return sections_.contains(name);
  }
  // Throws kCorrupt when the section is absent.
  std::string_view section(const std::string& name) const;

 private:
  MappedFile file_;
  std::int64_t completed_ = 0;
  std::uint64_t fingerprint_ = 0;
  std::map<std::string, std::string_view, std::less<>> sections_;
};

// One exogenous operation recorded in the WAL. `clock` is the number of
// windows completed when the op ran; `point` distinguishes the call sites
// a resume must replay at (see eval/world.cpp).
struct WalOp {
  std::int64_t clock = 0;
  std::uint8_t point = 0;
  std::string type;
  std::string payload;
};

// Canonical encoded payload of one op (the bytes inside its WAL frame):
// clock, point, type, payload. wal_append/wal_rewrite and the WalPosition
// digest all use this encoding, so the digest chain matches the log bytes.
std::string encode_wal_op(const WalOp& op);

// Position in the op log that a snapshot's state depends on. The world
// side of a resume re-simulates from window zero driven by WAL replay, so
// a snapshot is only usable while the WAL still holds every op that
// preceded it: `count` ops whose chained digest is `digest`. A WAL whose
// surviving prefix cannot satisfy a snapshot's position (a silently torn
// or bit-flipped frame truncated the log underneath it) makes that
// snapshot unusable — the RecoveryManager quarantines it and falls back,
// as far as a full cold start when nothing satisfiable remains.
struct WalPosition {
  std::uint64_t count = 0;
  std::uint64_t digest = kWalDigestSeed;

  static constexpr std::uint64_t kWalDigestSeed = 0xcbf29ce484222325ULL;
};

// Snapshot section name carrying an encoded WalPosition.
inline constexpr const char* kWalPositionSection = "walpos";

// Extends `digest` over one more op (chained FNV-1a of encode_wal_op).
std::uint64_t chain_wal_digest(std::uint64_t digest, const WalOp& op);

// The position after the first `count` ops of `ops`.
WalPosition wal_position_of(const std::vector<WalOp>& ops, std::size_t count);

// True when `ops` starts with the `pos.count`-op prefix `pos` digests.
bool wal_position_consistent(const WalPosition& pos,
                             const std::vector<WalOp>& ops);

std::string encode_wal_position(const WalPosition& pos);
// Throws a classified StoreError on a malformed payload.
WalPosition decode_wal_position(std::string_view payload);

// Appends one op frame to `dir/wal.log`.
void wal_append(const std::string& dir, const WalOp& op,
                IoContext* io = nullptr);

// Reads the full WAL (empty when the file does not exist).
std::vector<WalOp> wal_read(const std::string& dir, IoContext* io = nullptr);

// Atomically rewrites `dir/wal.log` to hold exactly `ops`. Resuming at a
// window earlier than the logged tail uses this to drop the now-dead ops
// before new appends would interleave with them.
void wal_rewrite(const std::string& dir, const std::vector<WalOp>& ops,
                 IoContext* io = nullptr);

// Creates `dir` (and parents) if needed; throws StoreError(kIo) on failure.
void ensure_dir(const std::string& dir);

}  // namespace rrr::store
