// Byte-level primitives of the durable state store: a little-endian
// fixed-width Encoder/Decoder pair used by every checkpointable class's
// save()/load(). The encoding is deliberately position-based and
// schema-free — each class writes and reads its fields in one fixed order,
// so equal state always produces equal bytes (the property the
// resume-determinism grid leans on). Framing, versioning, and checksums
// live one layer up in framing.h; a Decoder only ever sees a payload that
// already passed those checks, so its own failure mode (running off the
// end, an impossible tag) is classified as kCorrupt.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace rrr::store {

// Classified store failure. Every decode/IO error in src/store throws this
// (never UB, never a partial object): callers branch on `kind` to report
// truncated vs. corrupted vs. version-skewed snapshots distinctly. kIo
// errors additionally carry a transient flag: a transient failure (EINTR,
// an injected flaky-disk EIO) may succeed if the same operation is retried
// — the RetryPolicy in io_env.h only re-attempts transient-classified
// errors; corruption kinds are never transient.
class StoreError : public std::runtime_error {
 public:
  enum class Kind {
    kTruncated,    // frame or payload shorter than its declared length
    kBadChecksum,  // frame checksum mismatch
    kVersionSkew,  // written by a newer format than this binary reads
    kCorrupt,      // structurally invalid (bad magic, impossible field)
    kIo,           // filesystem-level failure (open/stat/rename)
  };

  StoreError(Kind kind, const std::string& message, bool transient = false)
      : std::runtime_error(message), kind_(kind), transient_(transient) {}

  Kind kind() const { return kind_; }
  bool transient() const { return transient_; }

 private:
  Kind kind_;
  bool transient_;
};

const char* to_string(StoreError::Kind kind);

class Encoder {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u16(std::uint16_t v) { raw(v); }
  void u32(std::uint32_t v) { raw(v); }
  void u64(std::uint64_t v) { raw(v); }
  void i64(std::int64_t v) { raw(static_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void f64(double v);

  // Length-prefixed byte strings (u64 length).
  void str(std::string_view v) {
    u64(v.size());
    buf_.append(v.data(), v.size());
  }

  const std::string& buffer() const { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  template <typename T>
  void raw(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
  }

  std::string buf_;
};

class Decoder {
 public:
  explicit Decoder(std::string_view data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  std::uint16_t u16() { return raw<std::uint16_t>(); }
  std::uint32_t u32() { return raw<std::uint32_t>(); }
  std::uint64_t u64() { return raw<std::uint64_t>(); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  bool boolean() { return u8() != 0; }
  double f64();

  std::string_view str() {
    std::uint64_t n = u64();
    need(n);
    std::string_view out = data_.substr(pos_, n);
    pos_ += n;
    return out;
  }

  bool done() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

  // Throws kCorrupt unless the payload was consumed exactly — a mismatch
  // means the writer and reader disagree on the schema.
  void expect_done() const;

 private:
  void need(std::uint64_t n) const {
    if (n > data_.size() - pos_) {
      throw StoreError(StoreError::Kind::kCorrupt,
                       "store payload ended mid-field");
    }
  }

  template <typename T>
  T raw() {
    need(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<std::uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += sizeof(T);
    return v;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace rrr::store
