// Tests for the Appendix-A traceroute processing pipeline (src/tracemap).
#include <gtest/gtest.h>

#include "routing/control_plane.h"
#include "topology/builder.h"
#include "tracemap/pipeline.h"
#include "traceroute/platform.h"

namespace rrr::tracemap {
namespace {

topo::Topology small_topology(std::uint64_t seed = 51) {
  topo::TopologyParams params;
  params.num_tier1 = 4;
  params.num_transit = 16;
  params.num_stub = 40;
  params.seed = seed;
  return topo::build_topology(params);
}

TEST(Ip2As, MapsAnnouncedSpaceAndIxpLans) {
  topo::Topology topology = small_topology();
  Ip2As ip2as = build_ip2as(topology, /*ixp_interface_coverage=*/1.0, 1);
  // Announced host space maps to the owner.
  MapResult host = ip2as.map(Ipv4(topo::as_block(3).network().value() + 9));
  EXPECT_EQ(host.asn, topology.as_at(3).asn);
  EXPECT_FALSE(host.is_ixp);
  // IXP interfaces map to their member with full coverage.
  for (const topo::Interconnect& ic : topology.interconnects()) {
    if (ic.ixp == topo::kNoIxp) continue;
    MapResult side_b = ip2as.map(ic.ip_b);
    EXPECT_TRUE(side_b.is_ixp);
    EXPECT_EQ(side_b.ixp, ic.ixp);
    EXPECT_EQ(side_b.asn, topology.as_at(topology.link_at(ic.link).b).asn);
    break;
  }
}

TEST(Ip2As, UnknownIxpInterfaceStaysIxpButUnmapped) {
  topo::Topology topology = small_topology();
  Ip2As ip2as = build_ip2as(topology, /*ixp_interface_coverage=*/0.0, 1);
  for (const topo::Interconnect& ic : topology.interconnects()) {
    if (ic.ixp == topo::kNoIxp) continue;
    MapResult result = ip2as.map(ic.ip_b);
    EXPECT_TRUE(result.is_ixp);
    EXPECT_FALSE(result.mapped());
    break;
  }
}

TEST(Alias, FullCoverageGroupsAllInterfaces) {
  topo::Topology topology = small_topology();
  AliasParams params;
  params.coverage = 1.0;
  AliasResolver resolver(topology, params);
  for (const topo::Router& router : topology.routers()) {
    if (router.interfaces.size() < 2) continue;
    RouterKey first = resolver.resolve(router.interfaces[0]);
    EXPECT_TRUE(first.resolved());
    for (Ipv4 ip : router.interfaces) {
      EXPECT_EQ(resolver.resolve(ip), first);
    }
  }
}

TEST(Alias, ZeroCoverageYieldsSingletons) {
  topo::Topology topology = small_topology();
  AliasParams params;
  params.coverage = 0.0;
  AliasResolver resolver(topology, params);
  for (const topo::Router& router : topology.routers()) {
    if (router.interfaces.size() < 2) continue;
    EXPECT_NE(resolver.resolve(router.interfaces[0]),
              resolver.resolve(router.interfaces[1]));
    EXPECT_FALSE(resolver.resolve(router.interfaces[0]).resolved());
    break;
  }
}

TEST(Geolocate, FullCoverageIsExact) {
  topo::Topology topology = small_topology();
  GeoParams params;
  params.ipmap_coverage = 1.0;
  Geolocator geo(topology, params);
  for (const topo::Router& router : topology.routers()) {
    for (Ipv4 ip : router.interfaces) {
      auto city = geo.locate(ip);
      ASSERT_TRUE(city.has_value());
      EXPECT_EQ(*city, router.city);
      EXPECT_EQ(geo.method(ip), GeoMethod::kIpMap);
    }
  }
}

TEST(Geolocate, UnknownAddressesAreUnlocated) {
  topo::Topology topology = small_topology();
  Geolocator geo(topology, {});
  EXPECT_FALSE(geo.locate(*Ipv4::parse("203.0.113.7")).has_value());
  EXPECT_EQ(geo.method(*Ipv4::parse("203.0.113.7")), GeoMethod::kNone);
}

TEST(HopPatcher, FillsUniquelyDeterminedStars) {
  HopPatcher patcher;
  tr::Traceroute teach;
  teach.hops = {{*Ipv4::parse("1.1.1.1"), 1.0},
                {*Ipv4::parse("2.2.2.2"), 2.0},
                {*Ipv4::parse("3.3.3.3"), 3.0}};
  patcher.observe(teach);

  tr::Traceroute broken = teach;
  broken.hops[1].ip.reset();
  tr::Traceroute patched = patcher.patch(broken);
  ASSERT_TRUE(patched.hops[1].responded());
  EXPECT_EQ(*patched.hops[1].ip, *Ipv4::parse("2.2.2.2"));
  EXPECT_NEAR(patched.hops[1].rtt_ms, 2.0, 1e-9);
}

TEST(HopPatcher, AmbiguousMiddlesStayWild) {
  HopPatcher patcher;
  tr::Traceroute a;
  a.hops = {{*Ipv4::parse("1.1.1.1"), 1.0},
            {*Ipv4::parse("2.2.2.2"), 2.0},
            {*Ipv4::parse("3.3.3.3"), 3.0}};
  patcher.observe(a);
  a.hops[1].ip = *Ipv4::parse("9.9.9.9");  // a second observed middle
  patcher.observe(a);

  tr::Traceroute broken = a;
  broken.hops[1].ip.reset();
  tr::Traceroute patched = patcher.patch(broken);
  EXPECT_FALSE(patched.hops[1].responded());
}

class ProcessingFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    topology_ = small_topology(61);
    cp_ = std::make_unique<routing::ControlPlane>(topology_, 61);
    tr::PlatformParams plat;
    plat.num_probes = 60;
    plat.num_anchors = 10;
    plat.seed = 61;
    tr::ProberParams prober;
    prober.seed = 61;
    prober.silent_router_fraction = 0.0;
    prober.intermittent_loss_prob = 0.0;
    prober.unresponsive_destination_prob = 0.0;
    platform_ = std::make_unique<tr::Platform>(*cp_, prober, plat);
    PipelineParams pipeline;
    pipeline.alias.coverage = 1.0;
    pipeline.geo.ipmap_coverage = 1.0;
    pipeline.ixp_interface_coverage = 1.0;
    pipeline.seed = 61;
    processing_ = std::make_unique<ProcessingContext>(topology_, pipeline);
  }
  topo::Topology topology_;
  std::unique_ptr<routing::ControlPlane> cp_;
  std::unique_ptr<tr::Platform> platform_;
  std::unique_ptr<ProcessingContext> processing_;
};

TEST_F(ProcessingFixture, AsPathMatchesControlPlane) {
  // With perfect mapping/noise-free measurement, the processed AS path must
  // equal the control-plane AS path.
  int checked = 0;
  for (tr::ProbeId probe_id : platform_->regular_probes()) {
    Ipv4 dst = platform_->probe(platform_->anchors()[0]).ip;
    tr::Traceroute trace = platform_->issue(probe_id, dst, TimePoint(0), 0);
    if (!trace.reached) continue;
    ProcessedTrace processed = processing_->process(trace);
    const tr::Probe& probe = platform_->probe(probe_id);
    topo::AsIndex origin = topology_.announced_owner_of(dst);
    const routing::Route& route = cp_->table_for(origin).at(probe.as);
    if (!route.reachable()) continue;
    ASSERT_FALSE(processed.has_as_loop);
    EXPECT_EQ(processed.as_path, route.path)
        << "processed " << to_string(processed.as_path) << " vs control "
        << to_string(route.path);
    // One border per AS transition.
    EXPECT_EQ(processed.borders.size(), route.path.size() - 1);
    if (++checked >= 10) break;
  }
  EXPECT_GE(checked, 5);
}

TEST_F(ProcessingFixture, BorderRouterPathMatchesGroundTruthCrossings) {
  tr::ProbeId probe_id = platform_->regular_probes()[1];
  const tr::Probe& probe = platform_->probe(probe_id);
  Ipv4 dst = platform_->probe(platform_->anchors()[1]).ip;
  tr::Traceroute trace = platform_->issue(probe_id, dst, TimePoint(0), 0);
  if (!trace.reached) GTEST_SKIP();
  ProcessedTrace processed = processing_->process(trace);
  routing::ForwardPath truth = cp_->resolver().resolve(
      probe.as, probe.city, dst, trace.flow_id);
  ASSERT_EQ(processed.borders.size(), truth.crossings.size());
  for (std::size_t i = 0; i < processed.borders.size(); ++i) {
    // The inferred far side must physically belong to the entered AS. (It
    // is not always the interconnect's ingress interface: messy PNIs are
    // numbered from the near side's block, so LPM places the AS transition
    // one hop later — the "assume both IPs are part of the border" case.)
    EXPECT_EQ(topology_.true_owner_of(processed.borders[i].far_ip),
              truth.crossings[i].to_as);
    EXPECT_EQ(processed.borders[i].far_as,
              topology_.as_at(truth.crossings[i].to_as).asn);
  }
}

TEST_F(ProcessingFixture, ClassifyChangeDistinguishesGranularities) {
  tr::ProbeId probe_id = platform_->regular_probes()[2];
  Ipv4 dst = platform_->probe(platform_->anchors()[2]).ip;
  tr::Traceroute trace = platform_->issue(probe_id, dst, TimePoint(0), 0);
  ProcessedTrace a = processing_->process(trace);
  EXPECT_EQ(classify_change(a, a), ChangeKind::kNone);
  // Tamper with a border router identity: border-level change.
  ProcessedTrace b = a;
  if (!b.borders.empty()) {
    b.borders[0].border_router.value ^= 1;
    EXPECT_EQ(classify_change(a, b), ChangeKind::kBorderLevel);
  }
  // Tamper with the AS path: AS-level change dominates.
  ProcessedTrace c = a;
  if (!c.as_path.empty()) {
    c.as_path[0] = Asn(64999);
    EXPECT_EQ(classify_change(a, c), ChangeKind::kAsLevel);
  }
}

}  // namespace
}  // namespace rrr::tracemap
