// Unit tests for the signals layer: potential index, calibration tallies,
// Table 1 bootstrap ordering, the refresh scheduler, community reputation,
// and the IXP monitor's decision rules.
#include <gtest/gtest.h>

#include "signals/asreldb.h"
#include "signals/calibration.h"
#include "signals/community_monitor.h"
#include "signals/ixp_monitor.h"
#include "signals/monitor.h"

namespace rrr::signals {
namespace {

tr::PairKey pair_of(tr::ProbeId probe, const char* dst) {
  return tr::PairKey{probe, *Ipv4::parse(dst)};
}

TEST(PotentialIndex, RelatesAndUnrelates) {
  PotentialIndex index;
  PotentialId a = index.create(Technique::kBgpAsPath);
  PotentialId b = index.create(Technique::kTraceSubpath);
  EXPECT_NE(a, b);
  EXPECT_EQ(index.technique_of(a), Technique::kBgpAsPath);
  EXPECT_THROW(index.technique_of(999), std::out_of_range);

  tr::PairKey key = pair_of(1, "10.0.0.1");
  index.relate(a, key, 0);
  index.relate(b, key, 2);
  index.relate(a, key, 0);  // duplicate: ignored
  EXPECT_EQ(index.relations_of(key).size(), 2u);
  index.unrelate_pair(key);
  EXPECT_TRUE(index.relations_of(key).empty());
}

TEST(Calibration, TprAndTnrFromTallies) {
  Calibration calibration(/*sliding_windows=*/30);
  tr::ProbeId vp = 4;
  PotentialId signal = 11;
  // 3 TP, 1 FN -> TPR 0.75; 2 TN, 2 FP -> TNR 0.5.
  calibration.record(vp, signal, 0, Outcome::kTruePositive);
  calibration.record(vp, signal, 5, Outcome::kTruePositive);
  calibration.record(vp, signal, 10, Outcome::kTruePositive);
  calibration.record(vp, signal, 15, Outcome::kFalseNegative);
  calibration.record(vp, signal, 20, Outcome::kTrueNegative);
  calibration.record(vp, signal, 25, Outcome::kTrueNegative);
  calibration.record(vp, signal, 30, Outcome::kFalsePositive);
  calibration.record(vp, signal, 35, Outcome::kFalsePositive);
  ASSERT_TRUE(calibration.tpr(vp, signal).has_value());
  // The sliding window dropped the oldest events (window span 30): events
  // at windows <= 5 are gone by window 35.
  EXPECT_TRUE(calibration.tnr(vp, signal).has_value());
  EXPECT_NEAR(*calibration.tnr(vp, signal), 0.5, 1e-9);
}

TEST(Calibration, UninitializedUntilHistoryAccumulates) {
  Calibration calibration(30);
  calibration.record(1, 2, 0, Outcome::kTruePositive);
  EXPECT_FALSE(calibration.tpr(1, 2).has_value());
  EXPECT_FALSE(calibration.tpr(9, 9).has_value());  // never recorded
}

ActiveSignal make_signal(Technique technique, SignalMeta meta,
                         tr::PairKey pair) {
  ActiveSignal s;
  s.technique = technique;
  s.meta = meta;
  s.pair = pair;
  return s;
}

TEST(Table1Ordering, IpOverlapDominates) {
  SignalMeta strong;
  strong.ip_overlap = 6;
  SignalMeta weak;
  weak.ip_overlap = 2;
  weak.as_overlap = 99;  // lower-priority attribute cannot compensate
  auto a = make_signal(Technique::kTraceSubpath, strong, pair_of(1, "1.1.1.1"));
  auto b = make_signal(Technique::kTraceSubpath, weak, pair_of(2, "1.1.1.1"));
  EXPECT_TRUE(bootstrap_priority_less(a, b));
  EXPECT_FALSE(bootstrap_priority_less(b, a));
}

TEST(Table1Ordering, TieBreaksWithinCategory) {
  SignalMeta base;
  base.ip_overlap = 4;
  SignalMeta more_vps = base;
  more_vps.vp_count = 9;
  SignalMeta fewer_vps = base;
  fewer_vps.vp_count = 2;
  auto a = make_signal(Technique::kBgpAsPath, more_vps, pair_of(1, "1.1.1.1"));
  auto b = make_signal(Technique::kBgpAsPath, fewer_vps, pair_of(2, "1.1.1.1"));
  EXPECT_TRUE(bootstrap_priority_less(a, b));

  SignalMeta sharp = base;
  sharp.deviation = 8.0;
  SignalMeta dull = base;
  dull.deviation = 1.0;
  auto c = make_signal(Technique::kTraceSubpath, sharp, pair_of(3, "1.1.1.1"));
  auto d = make_signal(Technique::kTraceSubpath, dull, pair_of(4, "1.1.1.1"));
  EXPECT_TRUE(bootstrap_priority_less(c, d));
}

TEST(Table1Ordering, AsLevelOutranksBorderLevel) {
  SignalMeta as_level;
  as_level.as_level = true;
  SignalMeta border;
  border.as_level = false;
  auto a = make_signal(Technique::kBgpAsPath, as_level, pair_of(1, "1.1.1.1"));
  auto b = make_signal(Technique::kBgpCommunity, border, pair_of(2, "1.1.1.1"));
  EXPECT_TRUE(bootstrap_priority_less(a, b));
}

TEST(Scheduler, BootstrapSpendsWholeBudgetByPriority) {
  Calibration calibration(30);  // empty: everything bootstraps
  std::map<tr::PairKey, RefreshScheduler::PairState> pairs;
  for (int i = 0; i < 10; ++i) {
    SignalMeta meta;
    meta.ip_overlap = i;  // pair 9 has the best signal
    tr::PairKey key = pair_of(static_cast<tr::ProbeId>(i), "10.0.0.1");
    RefreshScheduler::PairState state;
    state.firing.push_back(make_signal(Technique::kTraceSubpath, meta, key));
    pairs.emplace(key, std::move(state));
  }
  Rng rng(1);
  auto chosen = RefreshScheduler::plan(pairs, calibration, 3, rng);
  ASSERT_EQ(chosen.size(), 3u);
  EXPECT_EQ(chosen[0].probe, 9u);
  EXPECT_EQ(chosen[1].probe, 8u);
  EXPECT_EQ(chosen[2].probe, 7u);
}

TEST(Scheduler, CalibratedVpWithHighTprGoesFirst) {
  Calibration calibration(30);
  tr::PairKey good = pair_of(1, "10.0.0.1");
  tr::PairKey bad = pair_of(2, "10.0.0.1");
  // VP 1's signal has a strong track record; VP 2's does not.
  for (int w = 0; w < 40; w += 2) {
    calibration.record(1, 100, w, Outcome::kTruePositive);
    calibration.record(2, 200, w,
                       w % 4 ? Outcome::kFalseNegative
                             : Outcome::kTruePositive);
  }
  std::map<tr::PairKey, RefreshScheduler::PairState> pairs;
  {
    RefreshScheduler::PairState state;
    ActiveSignal s = make_signal(Technique::kBgpAsPath, {}, good);
    s.potential = 100;
    state.firing.push_back(s);
    pairs.emplace(good, std::move(state));
  }
  {
    RefreshScheduler::PairState state;
    ActiveSignal s = make_signal(Technique::kBgpAsPath, {}, bad);
    s.potential = 200;
    state.firing.push_back(s);
    pairs.emplace(bad, std::move(state));
  }
  Rng rng(2);
  auto chosen = RefreshScheduler::plan(pairs, calibration, 1, rng);
  ASSERT_EQ(chosen.size(), 1u);
  EXPECT_EQ(chosen[0].probe, 1u);
}

TEST(Scheduler, RespectsBudgetAndAvoidsDuplicates) {
  Calibration calibration(30);
  std::map<tr::PairKey, RefreshScheduler::PairState> pairs;
  tr::PairKey key = pair_of(5, "10.0.0.1");
  RefreshScheduler::PairState state;
  // Two signals for the same pair must yield at most one refresh.
  state.firing.push_back(make_signal(Technique::kBgpAsPath, {}, key));
  state.firing.push_back(make_signal(Technique::kTraceSubpath, {}, key));
  pairs.emplace(key, std::move(state));
  Rng rng(3);
  auto chosen = RefreshScheduler::plan(pairs, calibration, 10, rng);
  EXPECT_EQ(chosen.size(), 1u);
  auto none = RefreshScheduler::plan(pairs, calibration, 0, rng);
  EXPECT_TRUE(none.empty());
}

TEST(CommunityReputation, GlobalPruneNeedsFpsAndLowPrecision) {
  CommunityReputation reputation;
  Community noisy(Asn(100), 7001);
  tr::PairKey key = pair_of(1, "10.0.0.1");
  reputation.record_outcome(noisy, key, false);
  reputation.record_outcome(noisy, key, false);
  EXPECT_FALSE(reputation.pruned(noisy));  // below threshold
  reputation.record_outcome(noisy, pair_of(2, "10.0.0.1"), false);
  EXPECT_TRUE(reputation.pruned(noisy));

  Community useful(Asn(100), 51002);
  for (int i = 0; i < 4; ++i) {
    reputation.record_outcome(useful, key, true);
    reputation.record_outcome(useful, key, false);
  }
  EXPECT_FALSE(reputation.pruned(useful));  // precision 0.5 > floor
}

TEST(CommunityReputation, PairLevelPruneIsLocal) {
  CommunityReputation reputation;
  Community c(Asn(100), 51002);
  tr::PairKey unlucky = pair_of(1, "10.0.0.1");
  tr::PairKey lucky = pair_of(2, "10.0.0.1");
  for (int i = 0; i < 4; ++i) reputation.record_outcome(c, unlucky, false);
  // Enough successes elsewhere to keep the community alive globally.
  for (int i = 0; i < 4; ++i) reputation.record_outcome(c, lucky, true);
  EXPECT_TRUE(reputation.pruned_for(c, unlucky));
  EXPECT_FALSE(reputation.pruned_for(c, lucky));
  EXPECT_FALSE(reputation.pruned(c));
}

TEST(AsRelDb, InvertsRelationships) {
  AsRelDb db;
  db.add(Asn(1), Asn(2), AsRel::kCustomer, false);
  EXPECT_EQ(db.relation(Asn(1), Asn(2)).rel, AsRel::kCustomer);
  EXPECT_EQ(db.relation(Asn(2), Asn(1)).rel, AsRel::kProvider);
  EXPECT_EQ(db.relation(Asn(1), Asn(9)).rel, AsRel::kUnknown);
  db.add(Asn(3), Asn(4), AsRel::kPeer, true);
  EXPECT_TRUE(db.relation(Asn(4), Asn(3)).via_ixp);
}

// IXP monitor decision rules (§4.2.3), driven with hand-built traces.
class IxpMonitorTest : public ::testing::Test {
 protected:
  IxpMonitorTest() {
    rels_.add(Asn(10), Asn(20), AsRel::kCustomer, false);  // 20 = provider
    rels_.add(Asn(11), Asn(21), AsRel::kPeer, true);       // public peer
    rels_.add(Asn(12), Asn(22), AsRel::kPeer, false);      // private peer
    members_[0] = {Asn(30)};  // established IXP 0 member
  }

  // A corpus view whose AS path is `path`.
  CorpusView corpus_view(tr::ProbeId probe, AsPath path) {
    CorpusView view;
    view.key = tr::PairKey{probe, Ipv4(0x0A000001u + probe)};
    view.processed.as_path = std::move(path);
    return view;
  }

  // A public trace showing `member` as near-end neighbor of IXP 0.
  tracemap::ProcessedTrace ixp_sighting(Asn member) {
    tracemap::ProcessedTrace trace;
    tracemap::ProcessedHop near;
    near.ip = Ipv4(1);
    near.asn = member;
    tracemap::ProcessedHop lan;
    lan.ip = Ipv4(2);
    lan.is_ixp = true;
    lan.ixp = 0;
    trace.hops = {near, lan};
    return trace;
  }

  AsRelDb rels_;
  std::map<topo::IxpId, std::set<Asn>> members_;
};

TEST_F(IxpMonitorTest, ProviderNextHopTriggersSignal) {
  IxpMonitor monitor(rels_, members_);
  PotentialIndex index;
  // Corpus path: 10 -> 20 (provider) -> 30 (established member).
  monitor.watch(corpus_view(1, {Asn(10), Asn(20), Asn(30)}), index);
  monitor.on_public_trace(ixp_sighting(Asn(10)), 5);
  auto signals = monitor.close_window(5, TimePoint(5 * 900));
  ASSERT_EQ(signals.size(), 1u);
  EXPECT_EQ(signals[0].technique, Technique::kColocation);
  EXPECT_EQ(signals[0].pair.probe, 1u);
}

TEST_F(IxpMonitorTest, PrivatePeerSilentUntilLearned) {
  IxpMonitor monitor(rels_, members_);
  PotentialIndex index;
  monitor.watch(corpus_view(2, {Asn(12), Asn(22), Asn(30)}), index);
  monitor.on_public_trace(ixp_sighting(Asn(12)), 5);
  EXPECT_TRUE(monitor.close_window(5, TimePoint(5 * 900)).empty());
  // After equal-preference behaviour is learned, the same case signals.
  IxpMonitor learned(rels_, members_);
  learned.learn_equal_preference(Asn(12));
  learned.watch(corpus_view(2, {Asn(12), Asn(22), Asn(30)}), index);
  learned.on_public_trace(ixp_sighting(Asn(12)), 5);
  EXPECT_EQ(learned.close_window(5, TimePoint(5 * 900)).size(), 1u);
}

TEST_F(IxpMonitorTest, NoSignalWithoutDownstreamMember) {
  IxpMonitor monitor(rels_, members_);
  PotentialIndex index;
  // No established member after the joiner on the path.
  monitor.watch(corpus_view(3, {Asn(10), Asn(20), Asn(40)}), index);
  monitor.on_public_trace(ixp_sighting(Asn(10)), 5);
  EXPECT_TRUE(monitor.close_window(5, TimePoint(5 * 900)).empty());
}

TEST_F(IxpMonitorTest, ExistingMembersDoNotRetrigger) {
  IxpMonitor monitor(rels_, members_);
  PotentialIndex index;
  monitor.watch(corpus_view(4, {Asn(10), Asn(20), Asn(30)}), index);
  // AS 30 is already a member: its sightings are not joins.
  monitor.on_public_trace(ixp_sighting(Asn(30)), 5);
  EXPECT_TRUE(monitor.close_window(5, TimePoint(5 * 900)).empty());
  EXPECT_EQ(monitor.detected_joins(), 0u);
}

}  // namespace
}  // namespace rrr::signals
