// Unit tests for the foundational value types (src/netbase).
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "netbase/asn.h"
#include "netbase/community.h"
#include "netbase/geo.h"
#include "netbase/ipv4.h"
#include "netbase/prefix.h"
#include "netbase/radix_trie.h"
#include "netbase/rng.h"
#include "netbase/time.h"

namespace rrr {
namespace {

TEST(Ipv4, RoundTripsDottedQuad) {
  auto ip = Ipv4::parse("192.168.3.45");
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(ip->to_string(), "192.168.3.45");
  EXPECT_EQ(ip->value(), 0xC0A8032Du);
}

TEST(Ipv4, RejectsMalformedInput) {
  EXPECT_FALSE(Ipv4::parse("192.168.3").has_value());
  EXPECT_FALSE(Ipv4::parse("192.168.3.256").has_value());
  EXPECT_FALSE(Ipv4::parse("192.168.3.45.6").has_value());
  EXPECT_FALSE(Ipv4::parse("a.b.c.d").has_value());
  EXPECT_FALSE(Ipv4::parse("").has_value());
  EXPECT_FALSE(Ipv4::parse("1..2.3").has_value());
}

TEST(Ipv4, OrdersNumerically) {
  EXPECT_LT(*Ipv4::parse("1.2.3.4"), *Ipv4::parse("1.2.3.5"));
  EXPECT_LT(*Ipv4::parse("9.255.255.255"), *Ipv4::parse("10.0.0.0"));
}

TEST(Prefix, MasksHostBits) {
  Prefix p(*Ipv4::parse("10.1.2.3"), 24);
  EXPECT_EQ(p.network().to_string(), "10.1.2.0");
  EXPECT_EQ(p.to_string(), "10.1.2.0/24");
}

TEST(Prefix, ContainsAndCovers) {
  Prefix p16 = *Prefix::parse("10.1.0.0/16");
  Prefix p24 = *Prefix::parse("10.1.2.0/24");
  EXPECT_TRUE(p16.contains(*Ipv4::parse("10.1.200.7")));
  EXPECT_FALSE(p16.contains(*Ipv4::parse("10.2.0.1")));
  EXPECT_TRUE(p16.covers(p24));
  EXPECT_FALSE(p24.covers(p16));
  EXPECT_TRUE(p16.covers(p16));
}

TEST(Prefix, ZeroLengthCoversEverything) {
  Prefix def(Ipv4(0), 0);
  EXPECT_TRUE(def.contains(*Ipv4::parse("255.255.255.255")));
  EXPECT_EQ(def.size(), 1ull << 32);
}

TEST(Prefix, ParseValidation) {
  EXPECT_TRUE(Prefix::parse("10.0.0.0/8").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0.0/33").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0.0").has_value());
  EXPECT_FALSE(Prefix::parse("banana/8").has_value());
}

TEST(AsPath, SuffixMatching) {
  AsPath reference = {Asn(10), Asn(20), Asn(30), Asn(40)};
  AsPath same_tail = {Asn(99), Asn(20), Asn(30), Asn(40)};
  EXPECT_TRUE(suffix_matches(same_tail, 1, reference));
  AsPath divergent = {Asn(99), Asn(20), Asn(31), Asn(40)};
  EXPECT_FALSE(suffix_matches(divergent, 1, reference));
  AsPath longer_tail = {Asn(99), Asn(20), Asn(25), Asn(30), Asn(40)};
  EXPECT_FALSE(suffix_matches(longer_tail, 1, reference));
}

TEST(AsPath, Rendering) {
  EXPECT_EQ(to_string(AsPath{Asn(13030), Asn(1299), Asn(2914)}),
            "13030 1299 2914");
  EXPECT_EQ(index_of({Asn(1), Asn(2)}, Asn(2)), 1);
  EXPECT_EQ(index_of({Asn(1), Asn(2)}, Asn(3)), -1);
}

TEST(Community, ParsesAndDecomposes) {
  auto c = Community::parse("13030:51701");
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->definer(), Asn(13030));
  EXPECT_EQ(c->value(), 51701);
  EXPECT_EQ(c->to_string(), "13030:51701");
  EXPECT_FALSE(Community::parse("13030").has_value());
  EXPECT_FALSE(Community::parse("70000:1").has_value());
}

TEST(Community, DiffRespectsDefinerFilter) {
  CommunitySet before = {Community(Asn(10), 1), Community(Asn(20), 2)};
  CommunitySet after = {Community(Asn(10), 3), Community(Asn(20), 2)};
  CommunityDiff all = diff_communities(before, after);
  EXPECT_EQ(all.added.size(), 1u);
  EXPECT_EQ(all.removed.size(), 1u);
  CommunityDiff only20 = diff_communities(before, after, Asn(20));
  EXPECT_TRUE(only20.empty());
}

TEST(WindowClock, FloorsNegativeTimes) {
  WindowClock clock(TimePoint(0), 900);
  EXPECT_EQ(clock.index_of(TimePoint(0)), 0);
  EXPECT_EQ(clock.index_of(TimePoint(899)), 0);
  EXPECT_EQ(clock.index_of(TimePoint(900)), 1);
  EXPECT_EQ(clock.index_of(TimePoint(-1)), -1);
  EXPECT_EQ(clock.index_of(TimePoint(-900)), -1);
  EXPECT_EQ(clock.index_of(TimePoint(-901)), -2);
}

TEST(WindowClock, BoundariesRoundTrip) {
  WindowClock clock(TimePoint(1000), 900);
  for (std::int64_t w : {-3, 0, 1, 17}) {
    EXPECT_EQ(clock.index_of(clock.window_start(w)), w);
    EXPECT_EQ(clock.index_of(clock.window_end(w) - 1), w);
  }
}

TEST(RadixTrie, LongestPrefixMatchPrefersSpecific) {
  RadixTrie<int> trie;
  trie.insert(*Prefix::parse("10.0.0.0/8"), 8);
  trie.insert(*Prefix::parse("10.1.0.0/16"), 16);
  trie.insert(*Prefix::parse("10.1.2.0/24"), 24);
  EXPECT_EQ(*trie.lookup(*Ipv4::parse("10.1.2.3")), 24);
  EXPECT_EQ(*trie.lookup(*Ipv4::parse("10.1.9.1")), 16);
  EXPECT_EQ(*trie.lookup(*Ipv4::parse("10.200.0.1")), 8);
  EXPECT_EQ(trie.lookup(*Ipv4::parse("11.0.0.1")), nullptr);
}

TEST(RadixTrie, EraseRestoresShorterMatch) {
  RadixTrie<int> trie;
  trie.insert(*Prefix::parse("10.0.0.0/8"), 8);
  trie.insert(*Prefix::parse("10.1.0.0/16"), 16);
  EXPECT_TRUE(trie.erase(*Prefix::parse("10.1.0.0/16")));
  EXPECT_EQ(*trie.lookup(*Ipv4::parse("10.1.2.3")), 8);
  EXPECT_FALSE(trie.erase(*Prefix::parse("10.1.0.0/16")));
  EXPECT_EQ(trie.size(), 1u);
}

TEST(RadixTrie, LookupMatchReportsPrefix) {
  RadixTrie<int> trie;
  trie.insert(*Prefix::parse("10.1.0.0/16"), 1);
  auto match = trie.lookup_match(*Ipv4::parse("10.1.2.3"));
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->prefix.to_string(), "10.1.0.0/16");
}

// Property sweep: trie LPM agrees with a brute-force scan.
class TrieProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrieProperty, AgreesWithLinearScan) {
  Rng rng(GetParam());
  RadixTrie<int> trie;
  std::vector<std::pair<Prefix, int>> entries;
  for (int i = 0; i < 300; ++i) {
    auto ip = Ipv4(static_cast<std::uint32_t>(rng.uniform_int(0, 1LL << 32)));
    auto len = static_cast<std::uint8_t>(rng.uniform_int(0, 32));
    Prefix prefix(ip, len);
    trie.insert(prefix, i);
    // Later duplicate prefixes overwrite earlier entries.
    std::erase_if(entries, [&](const auto& e) { return e.first == prefix; });
    entries.emplace_back(prefix, i);
  }
  for (int probe = 0; probe < 500; ++probe) {
    auto ip = Ipv4(static_cast<std::uint32_t>(rng.uniform_int(0, 1LL << 32)));
    const int* got = trie.lookup(ip);
    // Brute force: longest matching prefix, ties impossible (unique keys).
    const std::pair<Prefix, int>* best = nullptr;
    for (const auto& entry : entries) {
      if (entry.first.contains(ip) &&
          (best == nullptr || entry.first.length() > best->first.length())) {
        best = &entry;
      }
    }
    if (best == nullptr) {
      EXPECT_EQ(got, nullptr);
    } else {
      ASSERT_NE(got, nullptr);
      EXPECT_EQ(*got, best->second);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrieProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000000), b.uniform_int(0, 1000000));
  }
}

TEST(Rng, ForkIsIndependentOfParentDraws) {
  Rng a(7);
  Rng fork_before = a.fork(1);
  a.uniform();  // perturb the parent
  Rng fork_after = Rng(7).fork(1);
  EXPECT_EQ(fork_before.uniform_int(0, 1 << 30),
            fork_after.uniform_int(0, 1 << 30));
}

TEST(Rng, SplitIsDeterministic) {
  for (std::uint64_t shard = 0; shard < 16; ++shard) {
    Rng a = Rng(99).split(shard);
    Rng b = Rng(99).split(shard);
    EXPECT_EQ(a.seed(), b.seed());
    for (int i = 0; i < 20; ++i) {
      EXPECT_EQ(a.uniform_int(0, 1 << 30), b.uniform_int(0, 1 << 30));
    }
  }
}

TEST(Rng, SplitStreamsAreIndependent) {
  // Distinct shards of the same parent, and the same shard of distinct
  // parents, must all land on distinct streams; split must also not collide
  // with fork on the same salt.
  std::set<std::uint64_t> seeds;
  for (std::uint64_t shard = 0; shard < 64; ++shard) {
    seeds.insert(Rng(5).split(shard).seed());
    seeds.insert(Rng(6).split(shard).seed());
    seeds.insert(Rng(5).fork(shard).seed());
  }
  EXPECT_EQ(seeds.size(), 3u * 64u);
}

TEST(Rng, SplitDoesNotPerturbParent) {
  Rng a(31), b(31);
  a.split(3);
  a.split(4);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1 << 30), b.uniform_int(0, 1 << 30));
  }
}

TEST(Geo, HaversineKnownDistances) {
  GeoPoint london{51.51, -0.13};
  GeoPoint frankfurt{50.11, 8.68};
  double d = distance_km(london, frankfurt);
  EXPECT_GT(d, 580.0);
  EXPECT_LT(d, 680.0);
  EXPECT_NEAR(distance_km(london, london), 0.0, 1e-9);
}

TEST(Geo, RttBoundsMatchSpeedOfLightInFiber) {
  // The paper's shortest-ping rule: 1 ms RTT => at most 100 km away.
  EXPECT_NEAR(max_distance_km_for_rtt(1.0), 100.0, 1e-9);
  GeoPoint a{0, 0}, b{0, 1};  // ~111 km apart
  EXPECT_GT(min_rtt_ms(a, b), 1.0);
}

}  // namespace
}  // namespace rrr
