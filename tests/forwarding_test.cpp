// Focused tests of data-plane behaviors: ECMP interconnect groups
// (interdomain diamonds, §5.4), intra-domain load-balancer branches, egress
// weight dominance, and hop emission structure.
#include <gtest/gtest.h>

#include <set>

#include "routing/control_plane.h"
#include "topology/builder.h"

namespace rrr::routing {
namespace {

class ForwardingBehavior : public ::testing::Test {
 protected:
  void SetUp() override {
    topo::TopologyParams params;
    params.num_tier1 = 4;
    params.num_transit = 20;
    params.num_stub = 60;
    params.interdomain_diamond_prob = 0.5;  // make diamonds common
    params.lb_as_prob = 0.6;
    params.seed = 81;
    topology_ = topo::build_topology(params);
    cp_ = std::make_unique<ControlPlane>(topology_, 81);
  }

  Ipv4 target_of(topo::AsIndex origin) {
    return Ipv4(topo::as_block(origin).network().value() + 1);
  }

  topo::Topology topology_;
  std::unique_ptr<ControlPlane> cp_;
};

TEST_F(ForwardingBehavior, EcmpGroupsSplitFlowsAcrossInterconnects) {
  // Find an ECMP interconnect group and a source routed across it.
  topo::LinkId diamond_link = topo::kNoLink;
  for (const topo::AsLink& link : topology_.links()) {
    int grouped = 0;
    for (topo::InterconnectId ic : link.interconnects) {
      if (topology_.interconnect_at(ic).ecmp_group >= 0) ++grouped;
    }
    if (grouped >= 2) {
      diamond_link = link.id;
      break;
    }
  }
  ASSERT_NE(diamond_link, topo::kNoLink);
  const topo::AsLink& link = topology_.link_at(diamond_link);

  // Flows from a's primary city toward b's space must hash across the
  // group's members.
  std::set<topo::InterconnectId> chosen;
  for (std::uint64_t flow = 0; flow < 64; ++flow) {
    chosen.insert(cp_->resolver().egress_choice(
        link.a, link.b, topology_.as_at(link.a).pops.front(), flow));
  }
  EXPECT_GE(chosen.size(), 2u) << "flows never spread across the diamond";
  for (topo::InterconnectId ic : chosen) {
    EXPECT_GE(topology_.interconnect_at(ic).ecmp_group, 0);
  }
}

TEST_F(ForwardingBehavior, LoadBalancedAsVariesInternalHopsByFlow) {
  // An AS with multiple branches yields different internal routers for
  // different flows, while the border path stays identical (intra-domain
  // diamonds never extend across the border).
  topo::AsIndex lb_as = topo::kNoAs;
  for (topo::AsIndex as = 0; as < topology_.as_count(); ++as) {
    if (topology_.as_at(as).lb_branches >= 2 &&
        topology_.as_at(as).tier == topo::AsTier::kStub) {
      lb_as = as;
      break;
    }
  }
  ASSERT_NE(lb_as, topo::kNoAs);
  topo::AsIndex origin = lb_as == 0 ? 1 : 0;
  std::set<std::vector<Ipv4>> hop_sets;
  ForwardPath reference;
  for (std::uint64_t flow = 0; flow < 32; ++flow) {
    ForwardPath path = cp_->resolver().resolve(
        lb_as, topology_.as_at(lb_as).pops.front(), target_of(origin), flow);
    if (!path.reachable) continue;
    if (reference.as_path.empty()) reference = path;
    EXPECT_EQ(path.as_path, reference.as_path);
    hop_sets.insert(path.hops);
  }
  EXPECT_GE(hop_sets.size(), 2u)
      << "no per-flow hop diversity in a load-balancing AS";
}

TEST_F(ForwardingBehavior, EgressWeightOverridesHotPotato) {
  // Penalizing the chosen interconnect of a multi-interconnect link must
  // move the choice for every ingress city.
  for (const topo::AsLink& link : topology_.links()) {
    if (link.interconnects.size() < 2) continue;
    bool any_grouped = false;
    for (topo::InterconnectId ic : link.interconnects) {
      if (topology_.interconnect_at(ic).ecmp_group >= 0) any_grouped = true;
    }
    if (any_grouped) continue;  // groups hash, not hot-potato
    topo::CityId city = topology_.as_at(link.a).pops.front();
    topo::InterconnectId before =
        cp_->resolver().egress_choice(link.a, link.b, city, 1);
    ASSERT_NE(before, topo::kNoInterconnect);
    cp_->state_mut().set_egress_weight(before, 1e9);
    topo::InterconnectId after =
        cp_->resolver().egress_choice(link.a, link.b, city, 1);
    EXPECT_NE(after, before);
    cp_->state_mut().set_egress_weight(before, 0.0);
    return;  // one link suffices
  }
  FAIL() << "no suitable multi-interconnect link found";
}

TEST_F(ForwardingBehavior, HopsEndAtDestinationAndCrossActiveBorders) {
  topo::AsIndex src = static_cast<topo::AsIndex>(topology_.as_count() - 1);
  topo::AsIndex origin = 2;
  ForwardPath path = cp_->resolver().resolve(
      src, topology_.as_at(src).pops.front(), target_of(origin), 9);
  ASSERT_TRUE(path.reachable);
  ASSERT_FALSE(path.hops.empty());
  EXPECT_EQ(path.hops.back(), target_of(origin));
  EXPECT_EQ(path.hop_routers.back(), topo::kNoRouter);
  ASSERT_EQ(path.hops.size(), path.hop_routers.size());
  // Every named router actually owns the revealed interface.
  for (std::size_t i = 0; i + 1 < path.hops.size(); ++i) {
    if (path.hop_routers[i] == topo::kNoRouter) continue;
    EXPECT_EQ(topology_.router_of_interface(path.hops[i]),
              path.hop_routers[i]);
  }
}

TEST_F(ForwardingBehavior, BorderOnlyResolveSkipsHopMaterialization) {
  topo::AsIndex src = 5;
  topo::AsIndex origin = 7;
  ForwardPath full = cp_->resolver().resolve(
      src, topology_.as_at(src).pops.front(), target_of(origin), 3, true);
  ForwardPath borders_only = cp_->resolver().resolve(
      src, topology_.as_at(src).pops.front(), target_of(origin), 3, false);
  EXPECT_EQ(full.as_path, borders_only.as_path);
  EXPECT_EQ(full.crossings, borders_only.crossings);
  EXPECT_TRUE(borders_only.hops.empty());
  EXPECT_FALSE(full.hops.empty());
}

TEST_F(ForwardingBehavior, UnroutableDestinationIsUnreachable) {
  ForwardPath path = cp_->resolver().resolve(
      0, topology_.as_at(0).pops.front(), *Ipv4::parse("203.0.113.1"), 1);
  EXPECT_FALSE(path.reachable);
  EXPECT_TRUE(path.hops.empty());
}

}  // namespace
}  // namespace rrr::routing
