// Tests for the measurement platform and prober (src/traceroute).
#include <gtest/gtest.h>

#include <set>

#include "topology/builder.h"
#include "traceroute/corpus.h"
#include "traceroute/platform.h"

namespace rrr::tr {
namespace {

class PlatformFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    topo::TopologyParams params;
    params.num_tier1 = 4;
    params.num_transit = 16;
    params.num_stub = 40;
    params.seed = 41;
    topology_ = topo::build_topology(params);
    cp_ = std::make_unique<routing::ControlPlane>(topology_, 41);
    ProberParams prober;
    prober.seed = 41;
    PlatformParams plat;
    plat.num_probes = 80;
    plat.num_anchors = 12;
    plat.seed = 41;
    platform_ = std::make_unique<Platform>(*cp_, prober, plat);
  }
  topo::Topology topology_;
  std::unique_ptr<routing::ControlPlane> cp_;
  std::unique_ptr<Platform> platform_;
};

TEST_F(PlatformFixture, ProbesHaveValidPlacement) {
  EXPECT_EQ(platform_->anchors().size(), 12u);
  EXPECT_EQ(platform_->regular_probes().size(), 80u);
  for (const Probe& probe : platform_->probes()) {
    EXPECT_LT(probe.as, topology_.as_count());
    EXPECT_TRUE(topology_.as_at(probe.as).has_pop(probe.city));
    // The probe's address belongs to its AS's announced space.
    EXPECT_EQ(topology_.announced_owner_of(probe.ip), probe.as);
  }
}

TEST_F(PlatformFixture, TracerouteEndsAtDestination) {
  Ipv4 dst = platform_->probe(platform_->anchors()[0]).ip;
  Traceroute trace =
      platform_->issue(platform_->regular_probes()[0], dst, TimePoint(0), 0);
  ASSERT_FALSE(trace.hops.empty());
  if (trace.reached) {
    ASSERT_TRUE(trace.hops.back().responded());
    EXPECT_EQ(*trace.hops.back().ip, dst);
  }
}

TEST_F(PlatformFixture, SameFlowVariantIsStable) {
  Ipv4 dst = platform_->probe(platform_->anchors()[1]).ip;
  ProbeId src = platform_->regular_probes()[3];
  Traceroute a = platform_->issue(src, dst, TimePoint(100), 2);
  Traceroute b = platform_->issue(src, dst, TimePoint(100), 2);
  ASSERT_EQ(a.hops.size(), b.hops.size());
  for (std::size_t i = 0; i < a.hops.size(); ++i) {
    EXPECT_EQ(a.hops[i].ip, b.hops[i].ip);
  }
}

TEST_F(PlatformFixture, RttsIncreaseAlongThePath) {
  Ipv4 dst = platform_->probe(platform_->anchors()[2]).ip;
  Traceroute trace =
      platform_->issue(platform_->regular_probes()[5], dst, TimePoint(0), 0);
  double last = 0.0;
  for (const Hop& hop : trace.hops) {
    if (!hop.responded()) continue;
    EXPECT_GE(hop.rtt_ms, last * 0.7) << "RTT collapsed implausibly";
    last = std::max(last, hop.rtt_ms);
    EXPECT_LT(hop.rtt_ms, 500.0);
  }
}

TEST_F(PlatformFixture, SilentRoutersAreConsistent) {
  // A router that is silent must be silent in every measurement.
  Prober& prober = platform_->prober();
  std::set<topo::RouterId> silent;
  for (const topo::Router& router : topology_.routers()) {
    if (prober.router_is_silent(router.id)) silent.insert(router.id);
  }
  Ipv4 dst = platform_->probe(platform_->anchors()[3]).ip;
  for (int round = 0; round < 5; ++round) {
    Traceroute trace = platform_->issue(platform_->regular_probes()[7], dst,
                                        TimePoint(round * 900), 0);
    routing::ForwardPath path = cp_->resolver().resolve(
        platform_->probe(platform_->regular_probes()[7]).as,
        platform_->probe(platform_->regular_probes()[7]).city, dst,
        trace.flow_id);
    for (std::size_t i = 0;
         i < trace.hops.size() && i < path.hop_routers.size(); ++i) {
      if (path.hop_routers[i] != topo::kNoRouter &&
          silent.contains(path.hop_routers[i])) {
        EXPECT_FALSE(trace.hops[i].responded());
      }
    }
  }
}

TEST_F(PlatformFixture, ChurnKillsOnlyRegularProbes) {
  PlatformParams plat;
  plat.num_probes = 200;
  plat.num_anchors = 10;
  plat.probe_death_per_day = 0.5;  // aggressive, to observe deaths
  plat.seed = 5;
  ProberParams prober;
  Platform churny(*cp_, prober, plat);
  auto died = churny.advance_churn(TimePoint(3 * kSecondsPerDay));
  EXPECT_GT(died.size(), 50u);
  for (ProbeId id : died) {
    EXPECT_FALSE(churny.probe(id).is_anchor);
    EXPECT_FALSE(churny.probe(id).active);
  }
  for (ProbeId id : churny.anchors()) {
    EXPECT_TRUE(churny.probe(id).active);
  }
}

TEST(Budget, EnforcesDailyLimit) {
  Budget budget(/*per_day=*/100, /*cost_each=*/20);
  TimePoint day0(100);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(budget.try_spend(day0));
  EXPECT_FALSE(budget.try_spend(day0));
  EXPECT_EQ(budget.remaining_today(day0), 0);
  // A new day resets the allowance.
  TimePoint day1(kSecondsPerDay + 100);
  EXPECT_TRUE(budget.try_spend(day1));
  EXPECT_EQ(budget.total_spent(), 6);
}

TEST(Corpus, UpsertTracksRefreshes) {
  Corpus corpus;
  Traceroute trace;
  trace.probe = 7;
  trace.dst_ip = *Ipv4::parse("10.0.0.1");
  trace.time = TimePoint(100);
  CorpusEntry& first = corpus.upsert(trace);
  EXPECT_EQ(first.refresh_count, 0u);
  corpus.set_freshness(first.key, Freshness::kStale);
  trace.time = TimePoint(200);
  CorpusEntry& second = corpus.upsert(trace);
  EXPECT_EQ(second.refresh_count, 1u);
  EXPECT_EQ(second.freshness, Freshness::kFresh);  // refresh resets
  EXPECT_EQ(corpus.size(), 1u);
  EXPECT_EQ(second.measured, TimePoint(200));
}

}  // namespace
}  // namespace rrr::tr
