// Tests for the report rendering helpers (src/eval/report).
#include <gtest/gtest.h>

#include <sstream>

#include "eval/report.h"

namespace rrr::eval {
namespace {

TEST(TableWriter, AlignsColumnsAndPadsRows) {
  TableWriter table({"name", "value"});
  table.add_row({"short", "1"});
  table.add_row({"a much longer cell", "2"});
  table.add_row({"only one cell"});  // second cell padded to empty
  std::ostringstream out;
  table.print(out);
  std::string text = out.str();
  // Every data line has the same width.
  std::istringstream lines(text);
  std::string line;
  std::size_t width = 0;
  while (std::getline(lines, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width) << "misaligned line: " << line;
  }
  EXPECT_NE(text.find("a much longer cell"), std::string::npos);
}

TEST(TableWriter, Formatters) {
  EXPECT_EQ(TableWriter::fmt(0.12345, 2), "0.12");
  EXPECT_EQ(TableWriter::fmt(1.0, 0), "1");
  EXPECT_EQ(TableWriter::fmt_pct(0.5), "50%");
  EXPECT_EQ(TableWriter::fmt_pct(0.123, 1), "12.3%");
  EXPECT_EQ(TableWriter::fmt_int(1234567), "1,234,567");
  EXPECT_EQ(TableWriter::fmt_int(-42), "-42");
  EXPECT_EQ(TableWriter::fmt_int(0), "0");
}

TEST(TableWriter, SeparatorsRender) {
  TableWriter table({"a"});
  table.add_row({"1"});
  table.add_separator();
  table.add_row({"2"});
  std::ostringstream out;
  table.print(out);
  // header sep + top + middle + bottom = 4 separator lines.
  std::string text = out.str();
  std::size_t count = 0;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (!line.empty() && line[0] == '+') ++count;
  }
  EXPECT_EQ(count, 4u);
}

TEST(PrintCdf, HandlesEmptyAndPopulated) {
  std::ostringstream out;
  Cdf empty;
  print_cdf(out, "empty", empty);
  EXPECT_NE(out.str().find("no data"), std::string::npos);

  Cdf cdf;
  for (int i = 1; i <= 10; ++i) cdf.add(i);
  std::ostringstream out2;
  print_cdf(out2, "ten", cdf);
  EXPECT_NE(out2.str().find("p50="), std::string::npos);
  EXPECT_NE(out2.str().find("n=10"), std::string::npos);
}

TEST(Banner, IncludesPaperNote) {
  std::ostringstream out;
  print_banner(out, "Table 9", "imaginary", "paper says 42");
  EXPECT_NE(out.str().find("Table 9"), std::string::npos);
  EXPECT_NE(out.str().find("paper says 42"), std::string::npos);
}

}  // namespace
}  // namespace rrr::eval
