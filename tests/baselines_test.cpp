// Tests for the baseline strategies (§5.3) and iPlane splicing (Appendix D).
#include <gtest/gtest.h>

#include "baselines/iplane.h"
#include "baselines/strategies.h"

namespace rrr::baselines {
namespace {

// A scripted oracle: per-path border tokens change at scheduled times.
class ScriptedOracle final : public PathOracle {
 public:
  explicit ScriptedOracle(std::size_t paths) : states_(paths) {
    for (std::size_t i = 0; i < paths; ++i) {
      states_[i].push_back({TimePoint(0),
                            {100 + i, 200 + i, 300 + i}});
    }
  }

  // After `t`, path `i` has tokens `tokens`.
  void schedule(std::size_t path, TimePoint t,
                std::vector<std::uint64_t> tokens) {
    states_[path].push_back({t, std::move(tokens)});
  }

  std::size_t path_count() const override { return states_.size(); }
  std::vector<std::uint64_t> border_tokens(std::size_t path,
                                           TimePoint t) const override {
    const std::vector<std::uint64_t>* current = nullptr;
    for (const auto& [when, tokens] : states_[path]) {
      if (when <= t) current = &tokens;
    }
    return *current;
  }
  std::uint64_t hop_token(std::size_t path, std::size_t index,
                          TimePoint t) const override {
    auto tokens = border_tokens(path, t);
    return index < tokens.size() ? tokens[index] : 0;
  }

 private:
  std::vector<std::vector<std::pair<TimePoint, std::vector<std::uint64_t>>>>
      states_;
};

TEST(RoundRobin, CyclesAndDetects) {
  ScriptedOracle oracle(4);
  oracle.schedule(2, TimePoint(100), {42});
  CorpusTracker tracker(oracle, TimePoint(0));
  ProbeBudget budget;
  budget.packets_per_second = 1.0;  // 1 traceroute per 15 s
  budget.traceroute_cost = 15;
  RoundRobinStrategy strategy(tracker, budget);
  EmulationStats stats;
  strategy.advance(TimePoint(0), stats);  // establishes the clock
  strategy.advance(TimePoint(150), stats);
  // 150 seconds => 10 traceroutes: 2.5 cycles; path 2 visited.
  EXPECT_EQ(stats.traceroutes, 10);
  EXPECT_EQ(stats.changes_detected, 1);
}

TEST(Sibyl, PatchesSharedSubpathsWithoutMeasuring) {
  ScriptedOracle oracle(3);
  // Paths 0 and 1 share token 500; both change at t=10.
  oracle.schedule(0, TimePoint(0), {500, 1});
  oracle.schedule(1, TimePoint(0), {500, 2});
  CorpusTracker tracker(oracle, TimePoint(0));
  oracle.schedule(0, TimePoint(10), {501, 1});
  oracle.schedule(1, TimePoint(10), {501, 2});
  ProbeBudget budget;
  budget.packets_per_second = 0.1;  // exactly one traceroute per 150 s
  budget.traceroute_cost = 15;
  SibylStrategy strategy(tracker, budget);
  EmulationStats stats;
  strategy.advance(TimePoint(0), stats);
  strategy.advance(TimePoint(150), stats);
  // One measurement (path 0) detects its change AND patches path 1.
  EXPECT_EQ(stats.traceroutes, 1);
  EXPECT_EQ(stats.changes_detected, 2);
  EXPECT_EQ(tracker.stored(1), oracle.border_tokens(1, TimePoint(150)));
}

TEST(Dtrack, DetectionProbesTriggerRemaps) {
  ScriptedOracle oracle(2);
  CorpusTracker tracker(oracle, TimePoint(0));
  oracle.schedule(0, TimePoint(10), {7, 8, 9});
  ProbeBudget budget;
  budget.packets_per_second = 2.0;
  budget.traceroute_cost = 15;
  budget.detection_cost = 1;
  DtrackStrategy strategy(tracker, budget, {}, 1);
  EmulationStats stats;
  strategy.advance(TimePoint(0), stats);
  strategy.advance(TimePoint(600), stats);
  EXPECT_GT(stats.detection_probes, 100);
  EXPECT_GE(stats.changes_detected, 1);
  EXPECT_EQ(tracker.stored(0), oracle.border_tokens(0, TimePoint(600)));
  // The detected path's estimated change rate must now exceed the other's.
  EXPECT_GT(strategy.change_rate(0), strategy.change_rate(1));
}

TEST(CorpusTracker, ChangeCallbackFires) {
  ScriptedOracle oracle(1);
  oracle.schedule(0, TimePoint(5), {1});
  CorpusTracker tracker(oracle, TimePoint(0));
  int callbacks = 0;
  tracker.set_on_change([&](std::size_t path, TimePoint t) {
    EXPECT_EQ(path, 0u);
    EXPECT_EQ(t, TimePoint(60));
    ++callbacks;
  });
  EXPECT_FALSE(tracker.remeasure(0, TimePoint(2)));
  EXPECT_TRUE(tracker.remeasure(0, TimePoint(60)));
  EXPECT_FALSE(tracker.remeasure(0, TimePoint(61)));  // already synced
  EXPECT_EQ(callbacks, 1);
}

tracemap::ProcessedTrace trace_through(std::vector<std::pair<int, int>>
                                           as_city_hops) {
  tracemap::ProcessedTrace trace;
  for (auto [asn, city] : as_city_hops) {
    tracemap::ProcessedHop hop;
    hop.ip = Ipv4(static_cast<std::uint32_t>(asn * 1000 + city));
    hop.asn = Asn(static_cast<std::uint32_t>(asn));
    hop.city = static_cast<topo::CityId>(city);
    trace.hops.push_back(hop);
  }
  return trace;
}

TEST(IPlane, SplicesAtSharedPop) {
  IPlane iplane;
  // (probe 1 -> dst A) passes PoP (20, 5); (probe 2 -> dst B) also does.
  tr::PairKey first{1, *Ipv4::parse("10.0.0.1")};
  tr::PairKey second{2, *Ipv4::parse("11.0.0.1")};
  iplane.add(first, trace_through({{10, 1}, {20, 5}, {30, 9}}));
  iplane.add(second, trace_through({{40, 2}, {20, 5}, {50, 3}}));

  // Predict probe 1 -> dst B: splice at (20, 5).
  auto spliced = iplane.predict(1, *Ipv4::parse("11.0.0.1"));
  ASSERT_TRUE(spliced.has_value());
  EXPECT_EQ(spliced->first, first);
  EXPECT_EQ(spliced->second, second);
  EXPECT_EQ(spliced->junction.asn, Asn(20));
  EXPECT_EQ(spliced->junction.city, 5);
}

TEST(IPlane, NoJunctionNoPrediction) {
  IPlane iplane;
  iplane.add({1, *Ipv4::parse("10.0.0.1")},
             trace_through({{10, 1}, {20, 5}}));
  iplane.add({2, *Ipv4::parse("11.0.0.1")},
             trace_through({{40, 2}, {50, 3}}));
  EXPECT_FALSE(iplane.predict(1, *Ipv4::parse("11.0.0.1")).has_value());
}

TEST(IPlane, RemovePrunesStaleTraces) {
  IPlane iplane;
  tr::PairKey first{1, *Ipv4::parse("10.0.0.1")};
  tr::PairKey second{2, *Ipv4::parse("11.0.0.1")};
  iplane.add(first, trace_through({{10, 1}, {20, 5}}));
  iplane.add(second, trace_through({{40, 2}, {20, 5}}));
  ASSERT_TRUE(iplane.predict(1, *Ipv4::parse("11.0.0.1")).has_value());
  iplane.remove(second);
  EXPECT_FALSE(iplane.predict(1, *Ipv4::parse("11.0.0.1")).has_value());
  EXPECT_EQ(iplane.trace_count(), 1u);
}

TEST(IPlane, UngeolocatedHopsActAsSoloPops) {
  tracemap::ProcessedTrace trace;
  tracemap::ProcessedHop mapped;
  mapped.ip = Ipv4(1);
  mapped.asn = Asn(10);
  mapped.city = 3;
  tracemap::ProcessedHop unmapped;
  unmapped.ip = Ipv4(2);  // no ASN/city: keyed by address
  trace.hops = {mapped, unmapped};
  auto pops = IPlane::pops_of(trace);
  ASSERT_EQ(pops.size(), 2u);
  EXPECT_EQ(pops[1].solo_ip, 2u);
}

}  // namespace
}  // namespace rrr::baselines
