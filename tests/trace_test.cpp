// Tests for the flight recorder (src/obs/trace.h), the slow-window
// watchdog (src/obs/watchdog.h), and the HTTP introspection endpoint
// (src/obs/http_export.h): ring wraparound and drop accounting, the
// bounded recorder's eviction policy, concurrent writers against a
// concurrent drainer (runs under `ctest -L tsan`), a golden Chrome
// trace-event export with a pinned wall anchor, fake-clock watchdog
// policy, live-endpoint round-trips, and the traced-run byte-identity
// contract (tracing is kRuntime-only and must not move semantic output).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "eval/world.h"
#include "netbase/intern.h"
#include "obs/export.h"
#include "obs/http_export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/watchdog.h"

namespace rrr::obs {
namespace {

TraceEvent make_span(const char* name, const char* category,
                     std::int64_t start_ns, std::int64_t dur_ns,
                     std::int64_t window = -1,
                     const char* arg_name = nullptr, std::int64_t arg = 0) {
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.phase = TracePhase::kSpan;
  event.start_ns = start_ns;
  event.dur_ns = dur_ns;
  event.window = window;
  event.arg_name = arg_name;
  event.arg = arg;
  return event;
}

TEST(TraceRing, PushDrainPreservesOrderAndRejectsWhenFull) {
  TraceRing ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  for (std::int64_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.try_push(make_span("e", "t", i, 1)));
  }
  EXPECT_FALSE(ring.try_push(make_span("overflow", "t", 99, 1)));

  std::vector<std::int64_t> starts;
  EXPECT_EQ(ring.drain([&](const TraceEvent& e) {
    starts.push_back(e.start_ns);
  }), 4u);
  EXPECT_EQ(starts, (std::vector<std::int64_t>{0, 1, 2, 3}));
  // Drained slots are reusable.
  EXPECT_TRUE(ring.try_push(make_span("again", "t", 5, 1)));
  EXPECT_EQ(ring.drain([](const TraceEvent&) {}), 1u);
}

TEST(TraceRecorder, FullRingDropsAreCountedPerReason) {
  TraceParams params;
  params.ring_capacity = 8;
  TraceRecorder recorder(params);
  MetricsRegistry registry;
  recorder.set_metrics(registry);

  // 20 pushes into an 8-slot ring with no drain in between: 8 retained,
  // 12 dropped at the ring.
  for (int i = 0; i < 20; ++i) {
    recorder.record(make_span("e", "t", i, 1));
  }
  recorder.drain();
  EXPECT_EQ(recorder.event_count(), 8u);
  EXPECT_EQ(recorder.dropped(), 12);
  EXPECT_EQ(registry
                .counter("rrr_trace_events_total", {}, Domain::kRuntime)
                .value(),
            8);
  EXPECT_EQ(registry
                .counter("rrr_trace_events_dropped_total",
                         {{"reason", "ring"}}, Domain::kRuntime)
                .value(),
            12);
  EXPECT_EQ(registry
                .counter("rrr_trace_events_dropped_total",
                         {{"reason", "recorder"}}, Domain::kRuntime)
                .value(),
            0);

  // After a drain the ring is empty again; further pushes are retained and
  // the drop watermark does not double-count earlier losses.
  for (int i = 0; i < 4; ++i) {
    recorder.record(make_span("e2", "t", 100 + i, 1));
  }
  recorder.drain();
  EXPECT_EQ(recorder.event_count(), 12u);
  EXPECT_EQ(recorder.dropped(), 12);
}

TEST(TraceRecorder, BoundedStoreEvictsOldestAndCounts) {
  TraceParams params;
  params.ring_capacity = 64;
  params.recorder_capacity = 10;
  params.wall_anchor_us = 0;  // exported ts == start_ns / 1000
  TraceRecorder recorder(params);
  MetricsRegistry registry;
  recorder.set_metrics(registry);

  for (std::int64_t i = 0; i < 30; ++i) {
    recorder.record(make_span("e", "t", i * 1'000'000, 1));
    recorder.drain();
  }
  EXPECT_EQ(recorder.event_count(), 10u);
  EXPECT_EQ(recorder.dropped(), 20);
  EXPECT_EQ(registry
                .counter("rrr_trace_events_dropped_total",
                         {{"reason", "recorder"}}, Domain::kRuntime)
                .value(),
            20);
  // The survivors are the *newest* events (starts 20ms..29ms); the oldest
  // were evicted.
  std::string json = recorder.json();
  EXPECT_EQ(json.find("\"ts\":0,"), std::string::npos);
  EXPECT_EQ(json.find("\"ts\":19000,"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":20000,"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":29000,"), std::string::npos);
}

TEST(TraceRecorder, GoldenChromeTraceExport) {
  TraceParams params;
  params.wall_anchor_us = 1000000;  // pinned: output is byte-stable
  TraceRecorder recorder(params);
  recorder.name_this_thread("driver");

  recorder.record(make_span("dispatch", "close", 2'000'000, 1'500'000,
                            /*window=*/3, "records", 42));
  TraceEvent flip;
  flip.name = "epoch_flip";
  flip.category = "table";
  flip.phase = TracePhase::kInstant;
  flip.start_ns = 4'000'000;
  flip.arg_name = "epoch";
  flip.arg = 7;
  recorder.record(flip);
  recorder.record(make_span("window", "window", 1'000'000, 5'000'000,
                            /*window=*/3));
  recorder.drain();

  // Events sorted by start time; metadata first; ts = anchor + start/1000.
  const std::string expected =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
      "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"driver\"}},"
      "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":1001000,\"dur\":5000,"
      "\"name\":\"window\",\"cat\":\"window\",\"args\":{\"window\":3}},"
      "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":1002000,\"dur\":1500,"
      "\"name\":\"dispatch\",\"cat\":\"close\","
      "\"args\":{\"window\":3,\"records\":42}},"
      "{\"ph\":\"i\",\"pid\":1,\"tid\":1,\"ts\":1004000,\"s\":\"t\","
      "\"name\":\"epoch_flip\",\"cat\":\"table\",\"args\":{\"epoch\":7}}"
      "]}";
  EXPECT_EQ(recorder.json(), expected);
  // json() does not drain: a second call sees the same document.
  EXPECT_EQ(recorder.json(), expected);
}

TEST(TraceSpan, NullRecorderIsANoOpAndLiveOneRecords) {
  { TraceSpan span(nullptr, "noop", "test"); }  // must not crash

  TraceRecorder recorder;
  {
    TraceSpan span(&recorder, "work", "test", /*window=*/5, "items", 0);
    span.set_arg(17);
  }
  recorder.instant("mark", "test");
  recorder.drain();
  EXPECT_EQ(recorder.event_count(), 2u);
  std::string json = recorder.json();
  EXPECT_NE(json.find("\"name\":\"work\""), std::string::npos);
  EXPECT_NE(json.find("\"items\":17"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"mark\""), std::string::npos);
}

TEST(TraceEnv, TraceEnvEnabledKnob) {
  ::unsetenv("RRR_TRACE");
  EXPECT_FALSE(trace_env_enabled());
  ::setenv("RRR_TRACE", "0", 1);
  EXPECT_FALSE(trace_env_enabled());
  ::setenv("RRR_TRACE", "", 1);
  EXPECT_FALSE(trace_env_enabled());
  ::setenv("RRR_TRACE", "1", 1);
  EXPECT_TRUE(trace_env_enabled());
  ::unsetenv("RRR_TRACE");
}

// Concurrent producers on their own rings, a drainer folding them into the
// store mid-flight, and a reader exporting JSON — the exact shape of a
// traced sharded close with a live /trace.json scrape (runs under TSAN).
TEST(Concurrency, WritersDrainAndExportRace) {
  TraceParams params;
  params.ring_capacity = 1 << 12;
  TraceRecorder recorder(params);
  MetricsRegistry registry;
  recorder.set_metrics(registry);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::atomic<bool> done{false};

  std::thread drainer([&] {
    while (!done.load(std::memory_order_acquire)) {
      recorder.drain();
      std::string json = recorder.json();
      ASSERT_FALSE(json.empty());
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&recorder] {
      for (int i = 0; i < kPerThread; ++i) {
        TraceSpan span(&recorder, "task", "pool", /*window=*/i);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  done.store(true, std::memory_order_release);
  drainer.join();
  recorder.drain();

  // Conservation: every push either landed in the store or was counted.
  const auto total = static_cast<std::int64_t>(kThreads) * kPerThread;
  EXPECT_EQ(static_cast<std::int64_t>(recorder.event_count()) +
                recorder.dropped(),
            total);
}

TEST(Watchdog, WarmupTrainsThenDeadlineTrips) {
  WatchdogParams params;
  params.enabled = true;
  params.ewma_alpha = 0.5;
  params.deadline_factor = 2.0;
  params.min_deadline_us = 1.0;
  params.warmup_windows = 2;
  Watchdog watchdog(params);
  MetricsRegistry registry;
  watchdog.set_metrics(registry);

  // Warmup observations never trip, however extreme, and only train.
  EXPECT_FALSE(watchdog.observe(0, 100.0));
  EXPECT_EQ(watchdog.deadline_us(), 0.0);
  EXPECT_FALSE(watchdog.observe(1, 1e9));
  EXPECT_EQ(watchdog.trips(), 0);

  // EWMA after {100, 1e9} with alpha 0.5: 100 -> ~5e8. Reset expectations
  // with calm windows to bring the deadline back down.
  for (int i = 0; i < 40; ++i) watchdog.observe(2 + i, 100.0);
  EXPECT_NEAR(watchdog.ewma_us(), 100.0, 1.0);
  EXPECT_NEAR(watchdog.deadline_us(), 200.0, 2.0);

  // Judged against the deadline derived *before* this observation.
  EXPECT_TRUE(watchdog.observe(50, 1000.0, [] {
    return std::string("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}");
  }, [] { return std::string("[]"); }));
  EXPECT_EQ(watchdog.trips(), 1);
  EXPECT_EQ(registry
                .counter("rrr_watchdog_trips_total", {}, Domain::kRuntime)
                .value(),
            1);
  ASSERT_EQ(watchdog.reports().size(), 1u);
  const Watchdog::Report& report = watchdog.reports()[0];
  EXPECT_EQ(report.window, 50);
  EXPECT_DOUBLE_EQ(report.duration_us, 1000.0);
  EXPECT_GT(report.duration_us, report.deadline_us);
  EXPECT_LT(report.ewma_us, 110.0);  // the pre-fold baseline, not 1000

  // Reports embed the snapshots as JSON documents, not quoted strings.
  std::string json = watchdog.reports_json();
  EXPECT_NE(json.find("\"trace\":{\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"stats\":[]"), std::string::npos);
}

TEST(Watchdog, ReportCapAndDisabledMode) {
  WatchdogParams params;
  params.enabled = true;
  params.ewma_alpha = 0.0;  // frozen baseline: the first window seeds it
  params.min_deadline_us = 1.0;
  params.warmup_windows = 1;
  params.max_reports = 2;
  Watchdog watchdog(params);
  watchdog.observe(0, 10.0);
  int trips = 0;
  for (int i = 1; i <= 5; ++i) {
    if (watchdog.observe(i, 100000.0)) ++trips;
  }
  EXPECT_EQ(trips, 5);
  EXPECT_EQ(watchdog.trips(), 5);
  EXPECT_EQ(watchdog.reports().size(), 2u);  // capped

  Watchdog off;  // enabled = false
  EXPECT_FALSE(off.observe(0, 1e12));
  EXPECT_EQ(off.trips(), 0);
  EXPECT_EQ(off.reports_json(), "[]");
}

// Minimal HTTP client for the loopback endpoint tests.
std::string http_get(int port, const std::string& request_text) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    ADD_FAILURE() << "connect failed";
    return "";
  }
  const char* data = request_text.c_str();
  std::size_t remaining = request_text.size();
  while (remaining > 0) {
    ssize_t sent = ::send(fd, data, remaining, 0);
    if (sent <= 0) break;
    data += sent;
    remaining -= static_cast<std::size_t>(sent);
  }
  std::string response;
  char buf[4096];
  ssize_t got;
  while ((got = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(got));
  }
  ::close(fd);
  return response;
}

TEST(HttpServer, ServesAllRoutesOnEphemeralPort) {
  HttpHandlers handlers;
  handlers.metrics_text = [] {
    return std::string("rrr_test_total 1\n");
  };
  handlers.stats_json = [] { return std::string("[{\"ok\":true}]"); };
  handlers.trace_json = [] {
    return std::string("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}");
  };
  HttpServer server(0, std::move(handlers));
  ASSERT_GT(server.port(), 0);

  std::string health = http_get(server.port(),
                                "GET /healthz HTTP/1.1\r\n"
                                "Host: localhost\r\n\r\n");
  EXPECT_NE(health.find("200"), std::string::npos);
  EXPECT_NE(health.find("ok\n"), std::string::npos);

  std::string metrics = http_get(server.port(),
                                 "GET /metrics HTTP/1.1\r\n\r\n");
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("rrr_test_total 1"), std::string::npos);

  std::string stats = http_get(server.port(),
                               "GET /stats.json HTTP/1.1\r\n\r\n");
  EXPECT_NE(stats.find("application/json"), std::string::npos);
  EXPECT_NE(stats.find("[{\"ok\":true}]"), std::string::npos);

  std::string trace = http_get(server.port(),
                               "GET /trace.json HTTP/1.1\r\n\r\n");
  EXPECT_NE(trace.find("traceEvents"), std::string::npos);

  std::string missing = http_get(server.port(),
                                 "GET /nope HTTP/1.1\r\n\r\n");
  EXPECT_NE(missing.find("404"), std::string::npos);

  std::string post = http_get(server.port(),
                              "POST /metrics HTTP/1.1\r\n"
                              "Content-Length: 0\r\n\r\n");
  EXPECT_NE(post.find("405"), std::string::npos);

  EXPECT_EQ(server.requests_served(), 6);
}

TEST(HttpServer, HandlerExceptionsAndShutdownAreClean) {
  {
    HttpHandlers handlers;  // all empty: routes 404, /healthz defaults
    HttpServer server(0, std::move(handlers));
    std::string health =
        http_get(server.port(), "GET /healthz HTTP/1.1\r\n\r\n");
    EXPECT_NE(health.find("ok\n"), std::string::npos);
    std::string metrics =
        http_get(server.port(), "GET /metrics HTTP/1.1\r\n\r\n");
    EXPECT_NE(metrics.find("404"), std::string::npos);
  }  // destructor joins without a pending request — must not hang
}

TEST(HttpServer, OversizeRequestHeadGets431) {
  HttpHandlers handlers;
  HttpLimits limits;
  limits.max_request_bytes = 128;
  HttpServer server(0, std::move(handlers), limits);
  std::string padded = "GET /healthz HTTP/1.1\r\nX-Pad: " +
                       std::string(512, 'a') + "\r\n\r\n";
  std::string response = http_get(server.port(), padded);
  EXPECT_NE(response.find("431"), std::string::npos);
  EXPECT_NE(response.find("128"), std::string::npos);  // limit is echoed

  // A request within the limit still succeeds on the same server.
  std::string health =
      http_get(server.port(), "GET /healthz HTTP/1.1\r\n\r\n");
  EXPECT_NE(health.find("200"), std::string::npos);
}

TEST(HttpServer, SlowLorisHitsTheReadDeadlineWith408) {
  HttpHandlers handlers;
  HttpLimits limits;
  limits.read_deadline_ms = 150;
  HttpServer server(0, std::move(handlers), limits);

  // Open a connection, send an incomplete request head, and never finish:
  // the server must answer 408 at the deadline instead of blocking its
  // accept loop on the dribbling client forever.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(server.port()));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char partial[] = "GET /healthz HTTP/1.1\r\n";
  ASSERT_GT(::send(fd, partial, sizeof(partial) - 1, 0), 0);
  std::string response;
  char buf[1024];
  ssize_t got;
  while ((got = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(got));
  }
  ::close(fd);
  EXPECT_NE(response.find("408"), std::string::npos);

  // The deadline only cut off the stuck connection, not the server: a
  // well-formed request on a fresh connection still succeeds.
  std::string health =
      http_get(server.port(), "GET /healthz HTTP/1.1\r\n\r\n");
  EXPECT_NE(health.find("200"), std::string::npos);
}

// The contract the live endpoint + flight recorder must not break: a fully
// traced, watchdogged run produces byte-identical *semantic* output to a
// plain run of the same world (tracing is kRuntime-domain only).
TEST(TracedWorld, SemanticOutputByteIdenticalWithTracingOn) {
  eval::WorldParams params;
  params.days = 2;
  params.warmup_days = 1;
  params.corpus_pair_target = 80;
  params.corpus_dest_count = 8;
  params.public_dest_count = 30;
  params.public_traces_per_window = 80;
  params.platform.num_probes = 120;
  params.topology.num_transit = 24;
  params.topology.num_stub = 80;
  params.seed = 20200642;
  params.engine_threads = 2;
  params.engine_shards = 2;
  params.telemetry = true;

  auto run = [](eval::WorldParams run_params) {
    Interner::ScopedInstance interner;
    eval::World world(run_params);
    world.run_until(world.corpus_t0());
    world.initialize_corpus();
    world.run_until(world.end());
    return world.semantic_stats_json();
  };

  eval::WorldParams traced = params;
  traced.trace = true;
  traced.watchdog.enabled = true;

  std::string plain = run(params);
  std::string with_trace = run(traced);
  EXPECT_EQ(plain, with_trace);
  EXPECT_NE(plain.find("rrr_"), std::string::npos);
}

// A traced world actually records the close-path taxonomy: window spans,
// per-shard closes, the epoch-table absorb, and the flip instant.
TEST(TracedWorld, RecordsWindowAndClosePathSpans) {
  eval::WorldParams params;
  params.days = 2;
  params.warmup_days = 1;
  params.corpus_pair_target = 80;
  params.corpus_dest_count = 8;
  params.public_dest_count = 30;
  params.public_traces_per_window = 80;
  params.platform.num_probes = 120;
  params.topology.num_transit = 24;
  params.topology.num_stub = 80;
  params.seed = 20200642;
  params.engine_threads = 2;
  params.engine_shards = 2;
  params.trace = true;

  Interner::ScopedInstance interner;
  eval::World world(params);
  world.run_until(world.corpus_t0());
  world.initialize_corpus();
  world.run_until(world.end());

  ASSERT_NE(world.tracer(), nullptr);
  std::string json = world.trace_json();
  for (const char* needle :
       {"\"name\":\"window\"", "\"name\":\"dispatch\"",
        "\"name\":\"shard_close\"", "\"name\":\"merge\"",
        "\"name\":\"absorb_apply\"", "\"name\":\"epoch_flip\"",
        "\"name\":\"task\"", "\"cat\":\"close\"",
        "\"name\":\"thread_name\""}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }
  // Tracing off: the accessor still returns a loadable empty document.
  eval::WorldParams off = params;
  off.trace = false;
  eval::World plain(off);
  EXPECT_EQ(plain.trace_json(),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}");
}

}  // namespace
}  // namespace rrr::obs
