// Unit tests for the telemetry subsystem (src/obs): registry identity,
// histogram bucket-edge semantics, exposition golden outputs, the sparse
// per-window stats series, and concurrent counter/histogram updates (the
// relaxed-atomic hot path; runs under `ctest -L tsan`).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "fault/injector.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "signals/feed_health.h"

namespace rrr::obs {
namespace {

TEST(MetricsRegistry, SameNameAndLabelsReturnsSameObject) {
  MetricsRegistry registry;
  Counter& a = registry.counter("rrr_test_total", {{"technique", "aspath"}});
  Counter& b = registry.counter("rrr_test_total", {{"technique", "aspath"}});
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(b.value(), 3);

  Counter& other =
      registry.counter("rrr_test_total", {{"technique", "border"}});
  EXPECT_NE(&a, &other);
  EXPECT_EQ(other.value(), 0);
  EXPECT_EQ(registry.size(), 2u);

  Histogram& h1 = registry.histogram("rrr_test_us", {1, 2, 5});
  Histogram& h2 = registry.histogram("rrr_test_us", {10, 20});
  EXPECT_EQ(&h1, &h2);  // second bounds ignored: the entry already exists
  EXPECT_EQ(h2.bounds().size(), 3u);
}

TEST(MetricsRegistry, SnapshotSortedByKeyAndFilteredByDomain) {
  MetricsRegistry registry;
  registry.counter("zzz_total", {}, Domain::kSemantic).inc(1);
  registry.gauge("aaa_depth", {}, Domain::kRuntime).set(7);
  registry.counter("mid_total", {{"k", "v"}}, Domain::kSemantic).inc(2);

  Snapshot all = registry.snapshot();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].key(), "aaa_depth");
  EXPECT_EQ(all[1].key(), "mid_total{k=\"v\"}");
  EXPECT_EQ(all[2].key(), "zzz_total");

  Snapshot semantic = registry.snapshot(Domain::kSemantic);
  ASSERT_EQ(semantic.size(), 2u);
  EXPECT_EQ(semantic[0].name, "mid_total");
  EXPECT_EQ(semantic[1].name, "zzz_total");

  Snapshot runtime = registry.snapshot(Domain::kRuntime);
  ASSERT_EQ(runtime.size(), 1u);
  EXPECT_EQ(runtime[0].value, 7);
}

TEST(Histogram, BucketEdgesAreInclusiveUpperBounds) {
  Histogram histogram({1, 2, 5});
  histogram.observe(0.0);  // below the first bound -> bucket 0
  histogram.observe(1.0);  // exactly on a bound -> that bucket
  histogram.observe(2.0);
  histogram.observe(4.9);
  histogram.observe(5.0);
  histogram.observe(5.1);  // past the last bound -> overflow bucket

  std::vector<std::int64_t> expected = {2, 1, 2, 1};
  EXPECT_EQ(histogram.bucket_counts(), expected);
  EXPECT_EQ(histogram.count(), 6);
  EXPECT_DOUBLE_EQ(histogram.sum(), 18.0);
}

TEST(Histogram, QuantileReturnsSmallestSufficientBound) {
  MetricsRegistry registry;
  Histogram& histogram = registry.histogram("h", {1, 2, 5});
  histogram.observe(0.5);
  histogram.observe(1.5);
  histogram.observe(100.0);
  MetricSnapshot m = registry.snapshot().front();

  EXPECT_DOUBLE_EQ(histogram_quantile(m, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(m, 0.5), 2.0);
  EXPECT_TRUE(std::isinf(histogram_quantile(m, 1.0)));

  MetricSnapshot empty;
  empty.kind = Kind::kHistogram;
  EXPECT_DOUBLE_EQ(histogram_quantile(empty, 0.5), 0.0);
}

TEST(Export, FormatNumberAndJsonEscape) {
  EXPECT_EQ(format_number(3.0), "3");
  EXPECT_EQ(format_number(-12.0), "-12");
  EXPECT_EQ(format_number(2.5), "2.5");
  EXPECT_EQ(format_number(2e6), "2000000");
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

// Builds the registry every exposition test shares: one histogram family,
// one gauge, one two-series counter family.
void fill_golden_registry(MetricsRegistry& registry) {
  Histogram& close_us = registry.histogram(
      "rrr_test_close_us", {1, 2, 5}, {}, Domain::kRuntime, "Close time.");
  close_us.observe(1.0);
  close_us.observe(1.5);
  close_us.observe(6.0);
  registry.gauge("rrr_test_queue_depth", {}, Domain::kRuntime, "Queue depth.")
      .set(4);
  registry
      .counter("rrr_test_signals_total", {{"technique", "aspath"}},
               Domain::kSemantic, "Signals emitted.")
      .inc(2);
  registry
      .counter("rrr_test_signals_total", {{"technique", "border"}},
               Domain::kSemantic, "Signals emitted.")
      .inc(1);
}

TEST(Export, PrometheusGoldenOutput) {
  MetricsRegistry registry;
  fill_golden_registry(registry);
  const std::string expected =
      "# HELP rrr_test_close_us Close time.\n"
      "# TYPE rrr_test_close_us histogram\n"
      "rrr_test_close_us_bucket{le=\"1\"} 1\n"
      "rrr_test_close_us_bucket{le=\"2\"} 2\n"
      "rrr_test_close_us_bucket{le=\"5\"} 2\n"
      "rrr_test_close_us_bucket{le=\"+Inf\"} 3\n"
      "rrr_test_close_us_sum 8.5\n"
      "rrr_test_close_us_count 3\n"
      "# HELP rrr_test_queue_depth Queue depth.\n"
      "# TYPE rrr_test_queue_depth gauge\n"
      "rrr_test_queue_depth 4\n"
      "# HELP rrr_test_signals_total Signals emitted.\n"
      "# TYPE rrr_test_signals_total counter\n"
      "rrr_test_signals_total{technique=\"aspath\"} 2\n"
      "rrr_test_signals_total{technique=\"border\"} 1\n";
  EXPECT_EQ(to_prometheus(registry.snapshot()), expected);
}

TEST(Export, JsonGoldenOutput) {
  MetricsRegistry registry;
  fill_golden_registry(registry);
  const std::string expected =
      "[{\"name\":\"rrr_test_close_us\",\"labels\":{},\"kind\":\"histogram\","
      "\"domain\":\"runtime\",\"histogram\":{\"count\":3,\"sum\":8.5,"
      "\"bounds\":[1,2,5],\"buckets\":[1,1,0,1]}},"
      "{\"name\":\"rrr_test_queue_depth\",\"labels\":{},\"kind\":\"gauge\","
      "\"domain\":\"runtime\",\"value\":4},"
      "{\"name\":\"rrr_test_signals_total\",\"labels\":"
      "{\"technique\":\"aspath\"},\"kind\":\"counter\","
      "\"domain\":\"semantic\",\"value\":2},"
      "{\"name\":\"rrr_test_signals_total\",\"labels\":"
      "{\"technique\":\"border\"},\"kind\":\"counter\","
      "\"domain\":\"semantic\",\"value\":1}]";
  EXPECT_EQ(to_json(registry.snapshot()), expected);
}

// The feed-health gauges as both exporters render them, against a driven
// scenario: one BGP stream walked into `dead` while a second keeps
// chattering (gap judgement is relative to feed activity), no trace
// streams. The whole family is golden — series order, label order, and
// the degraded rollup.
TEST(Export, FeedHealthGaugesGoldenOutput) {
  signals::FeedHealthParams params;
  params.enabled = true;
  params.baseline_alpha = 0.5;
  params.gap_fraction = 0.5;
  params.min_baseline = 0.5;
  params.judge_mass = 1.0;
  params.warmup_windows = 2;
  params.suspect_windows = 2;
  signals::FeedHealthTracker tracker(params);
  MetricsRegistry registry;
  tracker.set_metrics(registry);
  for (std::int64_t w = 0; w < 5; ++w) {
    for (int i = 0; i < 4; ++i) tracker.count_bgp(1, "rrc00", w);
    for (int i = 0; i < 4; ++i) tracker.count_bgp(2, "rrc01", w);
    tracker.close_window(w);
  }
  for (int i = 0; i < 4; ++i) tracker.count_bgp(2, "rrc01", 5);
  tracker.close_window(5);  // rrc00 gap: suspect
  for (int i = 0; i < 4; ++i) tracker.count_bgp(2, "rrc01", 6);
  tracker.close_window(6);  // rrc00 gap: dead
  ASSERT_TRUE(tracker.bgp_quarantined(1));
  ASSERT_FALSE(tracker.bgp_quarantined(2));

  const std::string prom =
      "# HELP rrr_feed_degraded 1 when the feed's quarantined fraction is "
      "degraded\n"
      "# TYPE rrr_feed_degraded gauge\n"
      "rrr_feed_degraded{feed=\"bgp\"} 1\n"
      "rrr_feed_degraded{feed=\"trace\"} 0\n"
      "# HELP rrr_feed_streams feed streams per quarantine state\n"
      "# TYPE rrr_feed_streams gauge\n"
      "rrr_feed_streams{feed=\"bgp\",state=\"dead\"} 1\n"
      "rrr_feed_streams{feed=\"bgp\",state=\"healthy\"} 1\n"
      "rrr_feed_streams{feed=\"bgp\",state=\"recovering\"} 0\n"
      "rrr_feed_streams{feed=\"bgp\",state=\"suspect\"} 0\n"
      "rrr_feed_streams{feed=\"trace\",state=\"dead\"} 0\n"
      "rrr_feed_streams{feed=\"trace\",state=\"healthy\"} 0\n"
      "rrr_feed_streams{feed=\"trace\",state=\"recovering\"} 0\n"
      "rrr_feed_streams{feed=\"trace\",state=\"suspect\"} 0\n";
  EXPECT_EQ(to_prometheus(registry.snapshot()), prom);

  const std::string json =
      "[{\"name\":\"rrr_feed_degraded\",\"labels\":{\"feed\":\"bgp\"},"
      "\"kind\":\"gauge\",\"domain\":\"semantic\",\"value\":1},"
      "{\"name\":\"rrr_feed_degraded\",\"labels\":{\"feed\":\"trace\"},"
      "\"kind\":\"gauge\",\"domain\":\"semantic\",\"value\":0},"
      "{\"name\":\"rrr_feed_streams\",\"labels\":{\"feed\":\"bgp\","
      "\"state\":\"dead\"},\"kind\":\"gauge\",\"domain\":\"semantic\","
      "\"value\":1},"
      "{\"name\":\"rrr_feed_streams\",\"labels\":{\"feed\":\"bgp\","
      "\"state\":\"healthy\"},\"kind\":\"gauge\",\"domain\":\"semantic\","
      "\"value\":1},"
      "{\"name\":\"rrr_feed_streams\",\"labels\":{\"feed\":\"bgp\","
      "\"state\":\"recovering\"},\"kind\":\"gauge\",\"domain\":\"semantic\","
      "\"value\":0},"
      "{\"name\":\"rrr_feed_streams\",\"labels\":{\"feed\":\"bgp\","
      "\"state\":\"suspect\"},\"kind\":\"gauge\",\"domain\":\"semantic\","
      "\"value\":0},"
      "{\"name\":\"rrr_feed_streams\",\"labels\":{\"feed\":\"trace\","
      "\"state\":\"dead\"},\"kind\":\"gauge\",\"domain\":\"semantic\","
      "\"value\":0},"
      "{\"name\":\"rrr_feed_streams\",\"labels\":{\"feed\":\"trace\","
      "\"state\":\"healthy\"},\"kind\":\"gauge\",\"domain\":\"semantic\","
      "\"value\":0},"
      "{\"name\":\"rrr_feed_streams\",\"labels\":{\"feed\":\"trace\","
      "\"state\":\"recovering\"},\"kind\":\"gauge\",\"domain\":\"semantic\","
      "\"value\":0},"
      "{\"name\":\"rrr_feed_streams\",\"labels\":{\"feed\":\"trace\","
      "\"state\":\"suspect\"},\"kind\":\"gauge\",\"domain\":\"semantic\","
      "\"value\":0}]";
  EXPECT_EQ(to_json(registry.snapshot()), json);
}

// The fault-injection counter family through both exporters: a pure-loss
// plan swallowing three BGP records and one public trace, everything else
// registered but zero.
TEST(Export, FaultCountersGoldenOutput) {
  fault::FaultPlan plan;
  plan.drop_rate = 1.0;
  plan.trace_drop_rate = 1.0;
  fault::FaultInjector injector(plan, TimePoint(0), 900);
  MetricsRegistry registry;
  injector.set_metrics(registry);

  bgp::BgpRecord record;
  record.time = TimePoint(10);
  record.vp = 1;
  record.collector = "rrc00";
  record.peer_asn = Asn(65001);
  record.peer_ip = *Ipv4::parse("192.0.2.1");
  record.prefix = *Prefix::parse("10.0.0.0/8");
  record.as_path = {Asn(65001)};
  for (int i = 0; i < 3; ++i) injector.on_bgp_record(record);
  tr::Traceroute trace;
  trace.probe = 2;
  trace.time = TimePoint(10);
  injector.on_public_trace(trace);

  const std::string prom =
      "# HELP rrr_fault_bgp_records_corrupted_total BGP records whose "
      "corrupted line still parsed\n"
      "# TYPE rrr_fault_bgp_records_corrupted_total counter\n"
      "rrr_fault_bgp_records_corrupted_total 0\n"
      "# HELP rrr_fault_bgp_records_dropped_total BGP records removed by "
      "the fault injector\n"
      "# TYPE rrr_fault_bgp_records_dropped_total counter\n"
      "rrr_fault_bgp_records_dropped_total{reason=\"blackout\"} 0\n"
      "rrr_fault_bgp_records_dropped_total{reason=\"corrupt\"} 0\n"
      "rrr_fault_bgp_records_dropped_total{reason=\"loss\"} 3\n"
      "# HELP rrr_fault_bgp_records_duplicated_total extra duplicate copies "
      "emitted by the fault injector\n"
      "# TYPE rrr_fault_bgp_records_duplicated_total counter\n"
      "rrr_fault_bgp_records_duplicated_total 0\n"
      "# HELP rrr_fault_bgp_records_reordered_total BGP records whose "
      "timestamp was jittered\n"
      "# TYPE rrr_fault_bgp_records_reordered_total counter\n"
      "rrr_fault_bgp_records_reordered_total 0\n"
      "# HELP rrr_fault_bgp_records_replayed_total session-reset replay "
      "records emitted after a blackout\n"
      "# TYPE rrr_fault_bgp_records_replayed_total counter\n"
      "rrr_fault_bgp_records_replayed_total 0\n"
      "# HELP rrr_fault_traces_dropped_total public traceroutes removed by "
      "the fault injector\n"
      "# TYPE rrr_fault_traces_dropped_total counter\n"
      "rrr_fault_traces_dropped_total{reason=\"blackout\"} 0\n"
      "rrr_fault_traces_dropped_total{reason=\"loss\"} 1\n";
  EXPECT_EQ(to_prometheus(registry.snapshot()), prom);

  const std::string json = to_json(registry.snapshot());
  EXPECT_NE(json.find("{\"name\":\"rrr_fault_bgp_records_dropped_total\","
                      "\"labels\":{\"reason\":\"loss\"},\"kind\":"
                      "\"counter\",\"domain\":\"semantic\",\"value\":3}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("{\"name\":\"rrr_fault_traces_dropped_total\","
                      "\"labels\":{\"reason\":\"loss\"},\"kind\":"
                      "\"counter\",\"domain\":\"semantic\",\"value\":1}"),
            std::string::npos)
      << json;
}

TEST(Export, StatsSeriesIsSparse) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("rrr_test_total");
  registry.counter("rrr_quiet_total");  // never incremented

  StatsSeries series;
  series.sample(0, registry);  // first sample records the initial zeros
  EXPECT_EQ(series.window_count(), 1u);
  series.sample(1, registry);  // nothing changed: no window emitted
  EXPECT_EQ(series.window_count(), 1u);
  counter.inc(5);
  series.sample(2, registry);
  EXPECT_EQ(series.window_count(), 2u);

  const std::string json = series.json();
  EXPECT_NE(json.find("{\"window\":2,\"metrics\":{\"rrr_test_total\":5}}"),
            std::string::npos);
  // The quiet counter only appears in the initial window-0 sample.
  EXPECT_EQ(json.find("rrr_quiet_total", json.find("\"window\":2")),
            std::string::npos);
}

TEST(Export, EnvEnabledKnob) {
  ::unsetenv("RRR_STATS");
  EXPECT_FALSE(env_enabled());
  ::setenv("RRR_STATS", "0", 1);
  EXPECT_FALSE(env_enabled());
  ::setenv("RRR_STATS", "1", 1);
  EXPECT_TRUE(env_enabled());
  ::unsetenv("RRR_STATS");
}

TEST(ScopedSpan, NullHistogramIsANoOpAndLiveOneRecords) {
  { ScopedSpan span(nullptr); }  // must not crash or observe anything
  Histogram histogram(duration_buckets_us());
  {
    ScopedSpan span(&histogram);
  }
  EXPECT_EQ(histogram.count(), 1);
  EXPECT_GE(histogram.sum(), 0.0);

  // Null-safe helpers mirror the same contract.
  inc(static_cast<Counter*>(nullptr));
  set(static_cast<Gauge*>(nullptr), 3);
  observe(static_cast<Histogram*>(nullptr), 1.0);
}

TEST(Concurrency, CountersAndHistogramsSumAcrossThreads) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("rrr_test_total");
  Histogram& histogram = registry.histogram("rrr_test_us", {1, 2, 5});

  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &histogram] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.inc();
        histogram.observe(1.5);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  constexpr std::int64_t kTotal = std::int64_t{kThreads} * kPerThread;
  EXPECT_EQ(counter.value(), kTotal);
  EXPECT_EQ(histogram.count(), kTotal);
  EXPECT_DOUBLE_EQ(histogram.sum(), 1.5 * static_cast<double>(kTotal));
  // All observations land in the le="2" bucket.
  std::vector<std::int64_t> expected = {0, kTotal, 0, 0};
  EXPECT_EQ(histogram.bucket_counts(), expected);
}

// Exposition hardening (DESIGN.md §13): label values pass through the
// 0.0.4 escaping rules and malformed metric names are rejected at
// registration, so a scrape can never be corrupted by a stray quote or an
// invalid family name.
TEST(Export, PrometheusLabelValueEscaping) {
  struct Case {
    const char* raw;
    const char* escaped;
  };
  const Case cases[] = {
      {"plain", "plain"},
      {"", ""},
      {"with \"quotes\"", "with \\\"quotes\\\""},
      {"back\\slash", "back\\\\slash"},
      {"line\nbreak", "line\\nbreak"},
      {"\\\"\n", "\\\\\\\"\\n"},
      {"utf8 ✓ ok", "utf8 ✓ ok"},
  };
  for (const Case& c : cases) {
    EXPECT_EQ(prometheus_escape_label(c.raw), c.escaped) << c.raw;
  }

  MetricsRegistry registry;
  registry.counter("rrr_esc_total", {{"collector", "rrc\"00\nx\\y"}})
      .inc(1);
  std::string text = to_prometheus(registry.snapshot());
  EXPECT_NE(
      text.find("rrr_esc_total{collector=\"rrc\\\"00\\nx\\\\y\"} 1"),
      std::string::npos)
      << text;
}

TEST(Export, PrometheusNameValidation) {
  struct Case {
    const char* name;
    bool valid;
  };
  const Case cases[] = {
      {"rrr_ok_total", true},
      {"_leading_underscore", true},
      {":colon:name", true},
      {"a", true},
      {"", false},
      {"9starts_with_digit", false},
      {"has-dash", false},
      {"has space", false},
      {"has{brace", false},
      {"unicode_✓", false},
  };
  for (const Case& c : cases) {
    EXPECT_EQ(prometheus_valid_name(c.name), c.valid) << c.name;
  }

  // Registration rejects invalid families outright...
  MetricsRegistry registry;
  EXPECT_THROW(registry.counter("bad-name"), std::invalid_argument);
  EXPECT_THROW(registry.gauge("9bad"), std::invalid_argument);
  EXPECT_THROW(registry.histogram("bad name", {1.0}),
               std::invalid_argument);
  // ...and valid ones still register and expose.
  registry.counter("rrr_good_total").inc(2);
  EXPECT_NE(to_prometheus(registry.snapshot()).find("rrr_good_total 2"),
            std::string::npos);
}

}  // namespace
}  // namespace rrr::obs
