// Unit tests for the telemetry subsystem (src/obs): registry identity,
// histogram bucket-edge semantics, exposition golden outputs, the sparse
// per-window stats series, and concurrent counter/histogram updates (the
// relaxed-atomic hot path; runs under `ctest -L tsan`).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"

namespace rrr::obs {
namespace {

TEST(MetricsRegistry, SameNameAndLabelsReturnsSameObject) {
  MetricsRegistry registry;
  Counter& a = registry.counter("rrr_test_total", {{"technique", "aspath"}});
  Counter& b = registry.counter("rrr_test_total", {{"technique", "aspath"}});
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(b.value(), 3);

  Counter& other =
      registry.counter("rrr_test_total", {{"technique", "border"}});
  EXPECT_NE(&a, &other);
  EXPECT_EQ(other.value(), 0);
  EXPECT_EQ(registry.size(), 2u);

  Histogram& h1 = registry.histogram("rrr_test_us", {1, 2, 5});
  Histogram& h2 = registry.histogram("rrr_test_us", {10, 20});
  EXPECT_EQ(&h1, &h2);  // second bounds ignored: the entry already exists
  EXPECT_EQ(h2.bounds().size(), 3u);
}

TEST(MetricsRegistry, SnapshotSortedByKeyAndFilteredByDomain) {
  MetricsRegistry registry;
  registry.counter("zzz_total", {}, Domain::kSemantic).inc(1);
  registry.gauge("aaa_depth", {}, Domain::kRuntime).set(7);
  registry.counter("mid_total", {{"k", "v"}}, Domain::kSemantic).inc(2);

  Snapshot all = registry.snapshot();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].key(), "aaa_depth");
  EXPECT_EQ(all[1].key(), "mid_total{k=\"v\"}");
  EXPECT_EQ(all[2].key(), "zzz_total");

  Snapshot semantic = registry.snapshot(Domain::kSemantic);
  ASSERT_EQ(semantic.size(), 2u);
  EXPECT_EQ(semantic[0].name, "mid_total");
  EXPECT_EQ(semantic[1].name, "zzz_total");

  Snapshot runtime = registry.snapshot(Domain::kRuntime);
  ASSERT_EQ(runtime.size(), 1u);
  EXPECT_EQ(runtime[0].value, 7);
}

TEST(Histogram, BucketEdgesAreInclusiveUpperBounds) {
  Histogram histogram({1, 2, 5});
  histogram.observe(0.0);  // below the first bound -> bucket 0
  histogram.observe(1.0);  // exactly on a bound -> that bucket
  histogram.observe(2.0);
  histogram.observe(4.9);
  histogram.observe(5.0);
  histogram.observe(5.1);  // past the last bound -> overflow bucket

  std::vector<std::int64_t> expected = {2, 1, 2, 1};
  EXPECT_EQ(histogram.bucket_counts(), expected);
  EXPECT_EQ(histogram.count(), 6);
  EXPECT_DOUBLE_EQ(histogram.sum(), 18.0);
}

TEST(Histogram, QuantileReturnsSmallestSufficientBound) {
  MetricsRegistry registry;
  Histogram& histogram = registry.histogram("h", {1, 2, 5});
  histogram.observe(0.5);
  histogram.observe(1.5);
  histogram.observe(100.0);
  MetricSnapshot m = registry.snapshot().front();

  EXPECT_DOUBLE_EQ(histogram_quantile(m, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(m, 0.5), 2.0);
  EXPECT_TRUE(std::isinf(histogram_quantile(m, 1.0)));

  MetricSnapshot empty;
  empty.kind = Kind::kHistogram;
  EXPECT_DOUBLE_EQ(histogram_quantile(empty, 0.5), 0.0);
}

TEST(Export, FormatNumberAndJsonEscape) {
  EXPECT_EQ(format_number(3.0), "3");
  EXPECT_EQ(format_number(-12.0), "-12");
  EXPECT_EQ(format_number(2.5), "2.5");
  EXPECT_EQ(format_number(2e6), "2000000");
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

// Builds the registry every exposition test shares: one histogram family,
// one gauge, one two-series counter family.
void fill_golden_registry(MetricsRegistry& registry) {
  Histogram& close_us = registry.histogram(
      "rrr_test_close_us", {1, 2, 5}, {}, Domain::kRuntime, "Close time.");
  close_us.observe(1.0);
  close_us.observe(1.5);
  close_us.observe(6.0);
  registry.gauge("rrr_test_queue_depth", {}, Domain::kRuntime, "Queue depth.")
      .set(4);
  registry
      .counter("rrr_test_signals_total", {{"technique", "aspath"}},
               Domain::kSemantic, "Signals emitted.")
      .inc(2);
  registry
      .counter("rrr_test_signals_total", {{"technique", "border"}},
               Domain::kSemantic, "Signals emitted.")
      .inc(1);
}

TEST(Export, PrometheusGoldenOutput) {
  MetricsRegistry registry;
  fill_golden_registry(registry);
  const std::string expected =
      "# HELP rrr_test_close_us Close time.\n"
      "# TYPE rrr_test_close_us histogram\n"
      "rrr_test_close_us_bucket{le=\"1\"} 1\n"
      "rrr_test_close_us_bucket{le=\"2\"} 2\n"
      "rrr_test_close_us_bucket{le=\"5\"} 2\n"
      "rrr_test_close_us_bucket{le=\"+Inf\"} 3\n"
      "rrr_test_close_us_sum 8.5\n"
      "rrr_test_close_us_count 3\n"
      "# HELP rrr_test_queue_depth Queue depth.\n"
      "# TYPE rrr_test_queue_depth gauge\n"
      "rrr_test_queue_depth 4\n"
      "# HELP rrr_test_signals_total Signals emitted.\n"
      "# TYPE rrr_test_signals_total counter\n"
      "rrr_test_signals_total{technique=\"aspath\"} 2\n"
      "rrr_test_signals_total{technique=\"border\"} 1\n";
  EXPECT_EQ(to_prometheus(registry.snapshot()), expected);
}

TEST(Export, JsonGoldenOutput) {
  MetricsRegistry registry;
  fill_golden_registry(registry);
  const std::string expected =
      "[{\"name\":\"rrr_test_close_us\",\"labels\":{},\"kind\":\"histogram\","
      "\"domain\":\"runtime\",\"histogram\":{\"count\":3,\"sum\":8.5,"
      "\"bounds\":[1,2,5],\"buckets\":[1,1,0,1]}},"
      "{\"name\":\"rrr_test_queue_depth\",\"labels\":{},\"kind\":\"gauge\","
      "\"domain\":\"runtime\",\"value\":4},"
      "{\"name\":\"rrr_test_signals_total\",\"labels\":"
      "{\"technique\":\"aspath\"},\"kind\":\"counter\","
      "\"domain\":\"semantic\",\"value\":2},"
      "{\"name\":\"rrr_test_signals_total\",\"labels\":"
      "{\"technique\":\"border\"},\"kind\":\"counter\","
      "\"domain\":\"semantic\",\"value\":1}]";
  EXPECT_EQ(to_json(registry.snapshot()), expected);
}

TEST(Export, StatsSeriesIsSparse) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("rrr_test_total");
  registry.counter("rrr_quiet_total");  // never incremented

  StatsSeries series;
  series.sample(0, registry);  // first sample records the initial zeros
  EXPECT_EQ(series.window_count(), 1u);
  series.sample(1, registry);  // nothing changed: no window emitted
  EXPECT_EQ(series.window_count(), 1u);
  counter.inc(5);
  series.sample(2, registry);
  EXPECT_EQ(series.window_count(), 2u);

  const std::string json = series.json();
  EXPECT_NE(json.find("{\"window\":2,\"metrics\":{\"rrr_test_total\":5}}"),
            std::string::npos);
  // The quiet counter only appears in the initial window-0 sample.
  EXPECT_EQ(json.find("rrr_quiet_total", json.find("\"window\":2")),
            std::string::npos);
}

TEST(Export, EnvEnabledKnob) {
  ::unsetenv("RRR_STATS");
  EXPECT_FALSE(env_enabled());
  ::setenv("RRR_STATS", "0", 1);
  EXPECT_FALSE(env_enabled());
  ::setenv("RRR_STATS", "1", 1);
  EXPECT_TRUE(env_enabled());
  ::unsetenv("RRR_STATS");
}

TEST(ScopedSpan, NullHistogramIsANoOpAndLiveOneRecords) {
  { ScopedSpan span(nullptr); }  // must not crash or observe anything
  Histogram histogram(duration_buckets_us());
  {
    ScopedSpan span(&histogram);
  }
  EXPECT_EQ(histogram.count(), 1);
  EXPECT_GE(histogram.sum(), 0.0);

  // Null-safe helpers mirror the same contract.
  inc(static_cast<Counter*>(nullptr));
  set(static_cast<Gauge*>(nullptr), 3);
  observe(static_cast<Histogram*>(nullptr), 1.0);
}

TEST(Concurrency, CountersAndHistogramsSumAcrossThreads) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("rrr_test_total");
  Histogram& histogram = registry.histogram("rrr_test_us", {1, 2, 5});

  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &histogram] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.inc();
        histogram.observe(1.5);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  constexpr std::int64_t kTotal = std::int64_t{kThreads} * kPerThread;
  EXPECT_EQ(counter.value(), kTotal);
  EXPECT_EQ(histogram.count(), kTotal);
  EXPECT_DOUBLE_EQ(histogram.sum(), 1.5 * static_cast<double>(kTotal));
  // All observations land in the le="2" bucket.
  std::vector<std::int64_t> expected = {0, kTotal, 0, 0};
  EXPECT_EQ(histogram.bucket_counts(), expected);
}

}  // namespace
}  // namespace rrr::obs
