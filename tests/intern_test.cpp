// Intern-table and epoch-arena tests: the id-space invariants the ingest
// hot path relies on (netbase/intern.h), the dictionary checkpoint codec,
// and the bump allocator's reuse contract (runtime/arena.h). Registered
// with the tsan label: the resolve-while-intern test exercises the
// lock-free chunk-table publication under ThreadSanitizer.
#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "bgp/table_view.h"
#include "netbase/intern.h"
#include "runtime/arena.h"
#include "store/serial.h"

namespace rrr {
namespace {

AsPath make_path(std::initializer_list<std::uint32_t> asns) {
  AsPath path;
  for (std::uint32_t a : asns) path.push_back(Asn(a));
  return path;
}

CommunitySet make_comms(std::initializer_list<std::uint32_t> raws) {
  CommunitySet set;
  for (std::uint32_t r : raws) set.insert(Community(r));
  return set;
}

TEST(Interner, EmptyValuesAreIdZero) {
  Interner::ScopedInstance scoped;
  EXPECT_EQ(scoped.get().path_id(AsPath{}), kEmptyInternId);
  EXPECT_EQ(scoped.get().commset_id(CommunitySet{}), kEmptyInternId);
  EXPECT_EQ(scoped.get().collector_id(""), kEmptyInternId);
  EXPECT_TRUE(InternedPath().empty());
  EXPECT_TRUE(InternedCommunities().empty());
  EXPECT_TRUE(InternedCollector().empty());
}

TEST(Interner, IdEqualityIsContentEquality) {
  Interner::ScopedInstance scoped;
  InternedPath a = make_path({64500, 64501, 64502});
  InternedPath b = make_path({64500, 64501, 64502});
  InternedPath c = make_path({64500, 64501});
  EXPECT_EQ(a.id(), b.id());
  EXPECT_TRUE(a == b);
  EXPECT_NE(a.id(), c.id());
  EXPECT_FALSE(a == c);
  // Content accessors resolve through the handle.
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a[0], Asn(64500));
  EXPECT_EQ(a.back(), Asn(64502));
  EXPECT_TRUE(a == make_path({64500, 64501, 64502}));

  InternedCommunities x = make_comms({1, 2, 3});
  InternedCommunities y = make_comms({3, 2, 1});  // set: same content
  EXPECT_TRUE(x == y);
  EXPECT_TRUE(x.contains(Community(2)));

  InternedCollector r1{std::string_view("rrc00")};
  InternedCollector r2{std::string_view("rrc00")};
  InternedCollector r3{std::string_view("route-views2")};
  EXPECT_TRUE(r1 == r2);
  EXPECT_FALSE(r1 == r3);
  EXPECT_EQ(r1.str(), "rrc00");
  EXPECT_TRUE(r1 == std::string_view("rrc00"));
}

TEST(Interner, IdsAssignFirstSightDense) {
  Interner::ScopedInstance scoped;
  Interner& in = scoped.get();
  PathId p1 = in.path_id(make_path({1}));
  PathId p2 = in.path_id(make_path({1, 2}));
  PathId p1_again = in.path_id(make_path({1}));
  EXPECT_EQ(p1, 1u);  // id 0 is the empty path
  EXPECT_EQ(p2, 2u);
  EXPECT_EQ(p1_again, p1);
  EXPECT_EQ(in.path_count(), 3u);
}

TEST(Interner, ScopedInstanceRestoresPrevious) {
  Interner* before = &Interner::global();
  {
    Interner::ScopedInstance scoped;
    EXPECT_EQ(&Interner::global(), &scoped.get());
    EXPECT_NE(&Interner::global(), before);
  }
  EXPECT_EQ(&Interner::global(), before);
}

TEST(Interner, ResolvedReferencesAreStableAcrossGrowth) {
  Interner::ScopedInstance scoped;
  Interner& in = scoped.get();
  PathId first = in.path_id(make_path({42, 43}));
  const AsPath* ref = &in.path(first);
  // Grow well past several chunks; the early entry must not move.
  for (std::uint32_t i = 0; i < 5000; ++i) {
    in.path_id(make_path({i, i + 1, i + 2}));
  }
  EXPECT_EQ(&in.path(first), ref);
  EXPECT_EQ(*ref, make_path({42, 43}));
}

// The hot-path concurrency shape: one serial writer interning new values
// while readers resolve already-published ids lock-free. TSAN checks the
// release/acquire pairing on the chunk table.
TEST(Interner, ConcurrentResolveWhileInterning) {
  Interner::ScopedInstance scoped;
  Interner& in = scoped.get();
  constexpr std::uint32_t kValues = 4000;
  std::atomic<std::uint32_t> published{0};
  std::atomic<bool> failed{false};

  std::thread writer([&] {
    for (std::uint32_t i = 0; i < kValues; ++i) {
      PathId id = in.path_id(make_path({i, i ^ 0x5555u}));
      published.store(id, std::memory_order_release);
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      for (int spin = 0; spin < 20000; ++spin) {
        std::uint32_t id = published.load(std::memory_order_acquire);
        const AsPath& path = in.path(id);
        if (id != kEmptyInternId &&
            (path.size() != 2 || path[1] != Asn(path[0].number() ^ 0x5555u))) {
          failed.store(true);
          return;
        }
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(in.path_count(), kValues + 1);
}

TEST(InternerState, RoundTripPreservesIdAssignment) {
  store::Encoder enc;
  std::uint32_t want_path, want_comm, want_coll;
  {
    Interner::ScopedInstance scoped;
    Interner& in = scoped.get();
    want_path = in.path_id(make_path({64500, 64501}));
    in.path_id(make_path({64502}));
    want_comm = in.commset_id(make_comms({0x00010002, 0x00010003}));
    want_coll = in.collector_id("rrc21");
    in.collector_id("route-views.sg");
    in.save_state(enc);
  }
  Interner::ScopedInstance scoped;
  Interner& restored = scoped.get();
  store::Decoder dec(enc.buffer());
  restored.load_state(dec);
  EXPECT_EQ(restored.path_count(), 3u);
  EXPECT_EQ(restored.commset_count(), 2u);
  EXPECT_EQ(restored.collector_count(), 3u);
  // Re-interning the same content yields the same ids as before the trip.
  EXPECT_EQ(restored.path_id(make_path({64500, 64501})), want_path);
  EXPECT_EQ(restored.commset_id(make_comms({0x00010002, 0x00010003})),
            want_comm);
  EXPECT_EQ(restored.collector_id("rrc21"), want_coll);
}

TEST(InternerState, LoadIntoNonEmptyInstanceIsRejected) {
  store::Encoder enc;
  {
    Interner::ScopedInstance scoped;
    scoped.get().save_state(enc);
  }
  Interner::ScopedInstance scoped;
  scoped.get().path_id(make_path({1}));  // no longer fresh
  store::Decoder dec(enc.buffer());
  try {
    scoped.get().load_state(dec);
    FAIL() << "expected StoreError";
  } catch (const store::StoreError& e) {
    EXPECT_EQ(e.kind(), store::StoreError::Kind::kCorrupt);
  }
}

TEST(InternerState, NonBijectiveDumpIsRejected) {
  // Hand-craft a dump whose path section repeats one content: the second
  // occurrence would re-intern to the first id, shifting everything after.
  store::Encoder enc;
  enc.u32(3);  // paths: empty, {7}, {7} again
  enc.u32(0);
  enc.u32(1);
  enc.u32(7);
  enc.u32(1);
  enc.u32(7);
  enc.u32(1);  // commsets: just the empty set
  enc.u32(0);
  enc.u32(1);  // collectors: just ""
  enc.str("");
  Interner::ScopedInstance scoped;
  store::Decoder dec(enc.buffer());
  try {
    scoped.get().load_state(dec);
    FAIL() << "expected StoreError";
  } catch (const store::StoreError& e) {
    EXPECT_EQ(e.kind(), store::StoreError::Kind::kCorrupt);
  }
}

TEST(InternerState, MissingEmptyValueIsRejected) {
  store::Encoder enc;
  enc.u32(0);  // zero paths: even the empty path is gone
  Interner::ScopedInstance scoped;
  store::Decoder dec(enc.buffer());
  try {
    scoped.get().load_state(dec);
    FAIL() << "expected StoreError";
  } catch (const store::StoreError& e) {
    EXPECT_EQ(e.kind(), store::StoreError::Kind::kCorrupt);
  }
}

TEST(PathCanonicalizer, StripsAndCollapsesThroughMemo) {
  Interner::ScopedInstance scoped;
  bgp::PathCanonicalizer canon(std::set<Asn>{Asn(6695)});  // an IXP ASN
  PathId raw =
      Interner::global().path_id(make_path({64500, 6695, 64501, 64501}));
  PathId first = canon.canonical(raw);
  PathId second = canon.canonical(raw);  // memo hit
  EXPECT_EQ(first, second);
  EXPECT_EQ(Interner::global().path(first), make_path({64500, 64501}));
}

TEST(PathCanonicalizer, EmptyIxpListIsPlainCollapse) {
  Interner::ScopedInstance scoped;
  bgp::PathCanonicalizer canon;
  PathId raw =
      Interner::global().path_id(make_path({64500, 64500, 64501, 64500}));
  EXPECT_EQ(Interner::global().path(canon.canonical(raw)),
            make_path({64500, 64501, 64500}));
}

TEST(Arena, AllocationsAreAlignedAndDisjoint) {
  runtime::Arena arena(1024);
  void* a = arena.allocate(13, 1);
  void* b = arena.allocate(16, 8);
  void* c = arena.allocate(1, 16);
  EXPECT_NE(a, b);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % 16, 0u);
  EXPECT_GE(arena.bytes_allocated(), 30u);
}

TEST(Arena, ResetRecyclesTheSameSlabs) {
  runtime::Arena arena(4096);
  void* first = arena.allocate(64, 8);
  for (int i = 0; i < 100; ++i) arena.allocate(64, 8);
  std::size_t reserved = arena.bytes_reserved();
  arena.reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  // Steady state: the next epoch bumps through the same memory, no growth.
  void* again = arena.allocate(64, 8);
  EXPECT_EQ(again, first);
  for (int i = 0; i < 100; ++i) arena.allocate(64, 8);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
  EXPECT_GT(arena.high_water_bytes(), 0u);
}

TEST(Arena, OversizedRequestGetsDedicatedSlab) {
  runtime::Arena arena(256);
  void* small = arena.allocate(32, 8);
  void* big = arena.allocate(10000, 8);  // far beyond the chunk size
  EXPECT_NE(small, nullptr);
  EXPECT_NE(big, nullptr);
  EXPECT_GE(arena.bytes_reserved(), 10000u);
  // The bump chunk is still usable after the oversized detour.
  EXPECT_NE(arena.allocate(32, 8), nullptr);
}

TEST(Arena, BacksStlContainers) {
  runtime::Arena arena;
  std::vector<int, runtime::ArenaAllocator<int>> v{
      runtime::ArenaAllocator<int>(arena)};
  for (int i = 0; i < 10000; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 10000u);
  EXPECT_EQ(v[9999], 9999);
  EXPECT_GT(arena.bytes_allocated(), 10000u * sizeof(int) - 1);
  v.clear();
  v.shrink_to_fit();
  arena.reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
}

}  // namespace
}  // namespace rrr
