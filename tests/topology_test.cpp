// Unit and property tests for the topology substrate (src/topology).
#include <gtest/gtest.h>

#include <set>

#include "topology/builder.h"
#include "topology/city.h"
#include "topology/topology.h"

namespace rrr::topo {
namespace {

TopologyParams small_params(std::uint64_t seed = 11) {
  TopologyParams params;
  params.num_tier1 = 4;
  params.num_transit = 20;
  params.num_stub = 60;
  params.num_ixps = 5;
  params.seed = seed;
  return params;
}

TEST(CityTable, LooksSane) {
  EXPECT_GE(city_count(), 40);
  EXPECT_EQ(find_city("London"), 0);
  EXPECT_EQ(find_city("Atlantis"), kNoCity);
  EXPECT_GT(city_distance_km(find_city("London"), find_city("Tokyo")),
            9000.0);
}

TEST(Builder, DeterministicForSameSeed) {
  Topology a = build_topology(small_params(7));
  Topology b = build_topology(small_params(7));
  ASSERT_EQ(a.as_count(), b.as_count());
  ASSERT_EQ(a.links().size(), b.links().size());
  ASSERT_EQ(a.interconnects().size(), b.interconnects().size());
  for (std::size_t i = 0; i < a.interconnects().size(); ++i) {
    EXPECT_EQ(a.interconnects()[i].ip_b, b.interconnects()[i].ip_b);
    EXPECT_EQ(a.interconnects()[i].city, b.interconnects()[i].city);
  }
}

TEST(Builder, DifferentSeedsDiffer) {
  Topology a = build_topology(small_params(7));
  Topology b = build_topology(small_params(8));
  bool any_difference = a.links().size() != b.links().size();
  for (std::size_t i = 0;
       !any_difference && i < std::min(a.ases().size(), b.ases().size());
       ++i) {
    any_difference = a.ases()[i].pops != b.ases()[i].pops;
  }
  EXPECT_TRUE(any_difference);
}

class TopologyInvariants : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override { topology_ = build_topology(small_params(GetParam())); }
  Topology topology_ = build_topology(small_params());
};

TEST_P(TopologyInvariants, EveryInterconnectIsInABothSidedCity) {
  for (const Interconnect& ic : topology_.interconnects()) {
    const AsLink& link = topology_.link_at(ic.link);
    EXPECT_TRUE(topology_.as_at(link.a).has_pop(ic.city) ||
                ic.ixp != kNoIxp)
        << "interconnect " << ic.id;
    // The routers must belong to the right ASes and cities.
    EXPECT_EQ(topology_.router_at(ic.router_a).owner, link.a);
    EXPECT_EQ(topology_.router_at(ic.router_b).owner, link.b);
    EXPECT_EQ(topology_.router_at(ic.router_a).city, ic.city);
    EXPECT_EQ(topology_.router_at(ic.router_b).city, ic.city);
  }
}

TEST_P(TopologyInvariants, InterfaceOwnershipIsConsistent) {
  for (const Router& router : topology_.routers()) {
    for (Ipv4 ip : router.interfaces) {
      EXPECT_EQ(topology_.router_of_interface(ip), router.id);
      EXPECT_EQ(topology_.true_owner_of(ip), router.owner);
    }
  }
}

TEST_P(TopologyInvariants, AnnouncedSpaceMapsToOwner) {
  for (AsIndex as = 0; as < topology_.as_count(); ++as) {
    Ipv4 inside = Ipv4(as_block(as).network().value() + 5);
    EXPECT_EQ(topology_.announced_owner_of(inside), as);
  }
  // IXP LANs are not announced.
  for (const Ixp& ixp : topology_.ixps()) {
    EXPECT_EQ(topology_.announced_owner_of(ixp.lan.network()), kNoAs);
    EXPECT_EQ(topology_.ixp_of_ip(Ipv4(ixp.lan.network().value() + 3)),
              ixp.id);
  }
}

TEST_P(TopologyInvariants, StubsHaveProviders) {
  for (AsIndex as = 0; as < topology_.as_count(); ++as) {
    if (topology_.as_at(as).tier != AsTier::kStub) continue;
    bool has_provider = false;
    for (const Neighbor& nb : topology_.neighbors(as)) {
      if (nb.kind == NeighborKind::kProvider) has_provider = true;
    }
    EXPECT_TRUE(has_provider) << topology_.as_at(as).asn.to_string();
  }
}

TEST_P(TopologyInvariants, LinksAreSymmetricInNeighborLists) {
  for (const AsLink& link : topology_.links()) {
    bool a_sees_b = false, b_sees_a = false;
    for (const Neighbor& nb : topology_.neighbors(link.a)) {
      if (nb.as == link.b && nb.link == link.id) a_sees_b = true;
    }
    for (const Neighbor& nb : topology_.neighbors(link.b)) {
      if (nb.as == link.a && nb.link == link.id) b_sees_a = true;
    }
    EXPECT_TRUE(a_sees_b && b_sees_a);
    EXPECT_GE(link.interconnects.size(), 1u);
  }
}

TEST_P(TopologyInvariants, IxpMembersShareOneLanAddressAcrossPeerings) {
  // One LAN address per (member, IXP): the Figure 14 sharing property.
  std::map<std::pair<IxpId, AsIndex>, std::set<Ipv4>> lan_ips;
  for (const Interconnect& ic : topology_.interconnects()) {
    if (ic.ixp == kNoIxp) continue;
    const AsLink& link = topology_.link_at(ic.link);
    lan_ips[{ic.ixp, link.a}].insert(ic.ip_a);
    lan_ips[{ic.ixp, link.b}].insert(ic.ip_b);
  }
  for (const auto& [key, ips] : lan_ips) {
    EXPECT_EQ(ips.size(), 1u)
        << "member has multiple LAN addresses on one IXP";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopologyInvariants,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(IxpJoin, CreatesPeeringsAndReusesLanAddress) {
  TopologyParams params = small_params(3);
  params.num_transit = 30;        // enough IXP membership to join against
  params.ixp_join_prob_transit = 0.8;
  Topology topology = build_topology(params);
  Rng rng(99);
  // Find an IXP with members and an AS not yet a member.
  const Ixp* target = nullptr;
  for (const Ixp& ixp : topology.ixps()) {
    if (ixp.members.size() >= 3) {
      target = &ixp;
      break;
    }
  }
  ASSERT_NE(target, nullptr);
  AsIndex joiner = kNoAs;
  for (AsIndex as = 0; as < topology.as_count(); ++as) {
    if (!target->has_member(as)) {
      joiner = as;
      break;
    }
  }
  ASSERT_NE(joiner, kNoAs);
  IxpId ixp_id = target->id;
  std::size_t links_before = topology.links().size();
  auto created = ixp_join(topology, ixp_id, joiner, /*peer_prob=*/1.0,
                          /*max_new_peers=*/3, rng);
  EXPECT_GE(created.size(), 1u);
  EXPECT_EQ(topology.links().size(), links_before + created.size());
  EXPECT_TRUE(topology.ixp_at(ixp_id).has_member(joiner));
  // All the joiner's new LAN interfaces are the same address.
  std::set<Ipv4> joiner_ips;
  for (LinkId link_id : created) {
    const AsLink& link = topology.link_at(link_id);
    for (InterconnectId ic_id : link.interconnects) {
      const Interconnect& ic = topology.interconnect_at(ic_id);
      joiner_ips.insert(link.a == joiner ? ic.ip_a : ic.ip_b);
    }
  }
  EXPECT_EQ(joiner_ips.size(), 1u);
}

TEST(PeeringDb, CompletenessBounds) {
  Topology topology = build_topology(small_params(4));
  Rng rng(5);
  PeeringDbSnapshot full = make_peeringdb(topology, 1.0, rng);
  std::size_t total = 0, recorded = 0;
  for (const Ixp& ixp : topology.ixps()) {
    total += ixp.members.size();
    recorded += full.ixp_members[ixp.id].size();
  }
  EXPECT_EQ(total, recorded);
  Rng rng2(5);
  PeeringDbSnapshot empty = make_peeringdb(topology, 0.0, rng2);
  for (const auto& members : empty.ixp_members) {
    EXPECT_TRUE(members.empty());
  }
}

}  // namespace
}  // namespace rrr::topo
