// Crash-fault tolerance (DESIGN.md §14): the storage fault model, the
// retry layer, the atomic-write hygiene, the RecoveryManager scrub, and
// the self-healing supervisor. The layers are pinned bottom-up:
//
//   - IoFaultPlan / IoFaultInjector: spec round-trips, deterministic
//     replay, transient clearing.
//   - RetryPolicy / IoContext::run: transient errors retry and recover,
//     permanent errors surface immediately, exhausted attempts and blown
//     budgets give up loudly.
//   - framing: injected torn writes / bit flips / crash-renames leave
//     exactly the on-disk artifact the model promises, and every
//     *reported* failure of write_file_atomic removes its temp file (the
//     temp-leak regression).
//   - RecoveryManager: stray tmp sweep, snapshot quarantine + fallback,
//     WAL tail truncation, idempotence, fingerprint enforcement.
//   - Supervisor: a (crash-at-window x io-fault-seed) grid where every
//     point recovers unaided and reproduces the clean run's signal
//     stream and semantic stats byte for byte.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "eval/supervisor.h"
#include "eval/world.h"
#include "fault/io_plan.h"
#include "store/checkpoint.h"
#include "store/framing.h"
#include "store/io_env.h"
#include "store/recovery.h"
#include "store/serial.h"

namespace rrr {
namespace {

namespace fs = std::filesystem;
using store::IoOp;
using store::IoOutcome;
using store::StoreError;

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    static std::atomic<int> counter{0};
    path_ = fs::path(::testing::TempDir()) /
            ("rrr-rec-" + tag + "-" + std::to_string(::getpid()) + "-" +
             std::to_string(counter.fetch_add(1)));
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Scripted environment: hands out a queued outcome per op kind (kOk once
// the queue drains), recording every consultation.
class ScriptedEnv : public store::IoEnv {
 public:
  std::map<IoOp, std::deque<IoOutcome>> script;
  std::vector<std::pair<IoOp, int>> calls;

  IoOutcome on_op(IoOp op, std::string_view, std::uint64_t,
                  int attempt) override {
    calls.emplace_back(op, attempt);
    auto it = script.find(op);
    if (it == script.end() || it->second.empty()) return IoOutcome{};
    IoOutcome out = it->second.front();
    it->second.pop_front();
    return out;
  }
};

IoOutcome reported(IoOutcome::Kind kind, bool transient) {
  IoOutcome out;
  out.kind = kind;
  out.transient = transient;
  return out;
}

// Fast retry policy: real microsecond sleeps, kept tiny.
store::RetryPolicy fast_policy(int attempts) {
  store::RetryPolicy policy;
  policy.max_attempts = attempts;
  policy.base_delay_us = 10;
  policy.max_delay_us = 100;
  return policy;
}

// --- IoFaultPlan ---

TEST(IoFaultPlan, SpecRoundTripsAndDefaultIsInert) {
  fault::IoFaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  EXPECT_EQ(plan.spec(), "");
  ASSERT_TRUE(fault::IoFaultPlan::parse("").has_value());

  plan.torn_write_rate = 0.05;
  plan.bit_flip_rate = 0.01;
  plan.enospc_rate = 0.02;
  plan.eio_fsync_rate = 0.03;
  plan.eio_read_rate = 0.04;
  plan.crash_rename_rate = 0.06;
  plan.transient_fraction = 0.5;
  plan.transient_clears_after = 3;
  plan.seed = 9;
  EXPECT_TRUE(plan.enabled());
  std::optional<fault::IoFaultPlan> parsed =
      fault::IoFaultPlan::parse(plan.spec());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->spec(), plan.spec());
  EXPECT_EQ(parsed->torn_write_rate, plan.torn_write_rate);
  EXPECT_EQ(parsed->transient_clears_after, plan.transient_clears_after);
  EXPECT_EQ(parsed->seed, plan.seed);

  EXPECT_FALSE(fault::IoFaultPlan::parse("bogus=1").has_value());
  EXPECT_FALSE(fault::IoFaultPlan::parse("torn=2.0").has_value());
  EXPECT_FALSE(fault::IoFaultPlan::parse("torn").has_value());
}

TEST(IoFaultPlan, InjectorReplaysBitIdenticallyPerSeed) {
  fault::IoFaultPlan plan;
  plan.torn_write_rate = 0.3;
  plan.bit_flip_rate = 0.2;
  plan.enospc_rate = 0.2;
  plan.crash_rename_rate = 0.3;
  plan.eio_read_rate = 0.3;
  plan.seed = 5;
  auto replay = [&](const fault::IoFaultPlan& p) {
    fault::IoFaultInjector env(p);
    std::vector<std::tuple<int, std::uint64_t, int, bool>> outcomes;
    for (int i = 0; i < 200; ++i) {
      IoOp op = static_cast<IoOp>(i % 5);
      IoOutcome out =
          env.on_op(op, "file-" + std::to_string(i), 1000, /*attempt=*/0);
      outcomes.emplace_back(static_cast<int>(out.kind), out.offset, out.bit,
                            out.transient);
    }
    return outcomes;
  };
  EXPECT_EQ(replay(plan), replay(plan));
  fault::IoFaultPlan other = plan;
  other.seed = 6;
  EXPECT_NE(replay(plan), replay(other));
}

TEST(IoFaultPlan, TransientFaultClearsAfterConfiguredRetries) {
  fault::IoFaultPlan plan;
  plan.enospc_rate = 1.0;
  plan.transient_fraction = 1.0;
  plan.transient_clears_after = 2;
  fault::IoFaultInjector env(plan);
  IoOutcome first = env.on_op(IoOp::kWrite, "x", 10, 0);
  EXPECT_EQ(first.kind, IoOutcome::Kind::kEnospc);
  EXPECT_TRUE(first.transient);
  // attempt 1 replays the cached fault; attempt 2 clears it.
  EXPECT_EQ(env.on_op(IoOp::kWrite, "x", 10, 1).kind,
            IoOutcome::Kind::kEnospc);
  EXPECT_EQ(env.on_op(IoOp::kWrite, "x", 10, 2).kind, IoOutcome::Kind::kOk);
  EXPECT_EQ(env.stats().cleared, 1);
}

TEST(IoFaultPlan, ReadFaultsAreAlwaysTransient) {
  fault::IoFaultPlan plan;
  plan.eio_read_rate = 1.0;
  plan.transient_fraction = 0.0;  // even with no transient write faults
  fault::IoFaultInjector env(plan);
  IoOutcome out = env.on_op(IoOp::kRead, "snap", 0, 0);
  EXPECT_EQ(out.kind, IoOutcome::Kind::kEio);
  EXPECT_TRUE(out.transient);
}

// --- RetryPolicy / IoContext ---

TEST(RetryPolicy, SpecRoundTrips) {
  store::RetryPolicy policy;
  EXPECT_EQ(policy.spec(), "");
  policy.max_attempts = 5;
  policy.base_delay_us = 100;
  policy.jitter = 0.25;
  policy.seed = 3;
  std::optional<store::RetryPolicy> parsed =
      store::RetryPolicy::parse(policy.spec());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->max_attempts, 5);
  EXPECT_EQ(parsed->base_delay_us, 100);
  EXPECT_EQ(parsed->jitter, 0.25);
  EXPECT_EQ(parsed->seed, 3u);
  EXPECT_FALSE(store::RetryPolicy::parse("attempts=0").has_value());
  EXPECT_FALSE(store::RetryPolicy::parse("nope=1").has_value());
}

TEST(IoContext, TransientErrorRetriesAndRecovers) {
  ScriptedEnv env;
  env.script[IoOp::kWrite] = {reported(IoOutcome::Kind::kEnospc, true),
                              reported(IoOutcome::Kind::kEio, true)};
  store::IoContext io(fast_policy(4), &env);
  int succeeded_at = -1;
  io.run(IoOp::kWrite, "p", [&](int attempt) {
    IoOutcome out = io.consult(IoOp::kWrite, "p", 100, attempt);
    if (out.kind == IoOutcome::Kind::kEnospc ||
        out.kind == IoOutcome::Kind::kEio) {
      throw StoreError(StoreError::Kind::kIo, "injected", out.transient);
    }
    succeeded_at = attempt;
  });
  EXPECT_EQ(succeeded_at, 2);
  EXPECT_EQ(io.stats().attempts, 3);
  EXPECT_EQ(io.stats().retries, 2);
  EXPECT_EQ(io.stats().transient_errors, 2);
  EXPECT_EQ(io.stats().permanent_errors, 0);
  EXPECT_EQ(io.stats().gave_up, 0);
  EXPECT_GT(io.stats().backoff_us, 0);
}

TEST(IoContext, PermanentErrorSurfacesImmediately) {
  ScriptedEnv env;
  env.script[IoOp::kWrite] = {reported(IoOutcome::Kind::kEnospc, false)};
  store::IoContext io(fast_policy(4), &env);
  try {
    io.run(IoOp::kWrite, "p", [&](int attempt) {
      IoOutcome out = io.consult(IoOp::kWrite, "p", 100, attempt);
      if (out.kind != IoOutcome::Kind::kOk) {
        throw StoreError(StoreError::Kind::kIo, "injected", out.transient);
      }
    });
    FAIL() << "expected StoreError";
  } catch (const StoreError& e) {
    EXPECT_FALSE(e.transient());
  }
  EXPECT_EQ(io.stats().attempts, 1);
  EXPECT_EQ(io.stats().retries, 0);
  EXPECT_EQ(io.stats().permanent_errors, 1);
}

TEST(IoContext, ExhaustedAttemptsGiveUp) {
  store::IoContext io(fast_policy(3), nullptr);
  int attempts_seen = 0;
  EXPECT_THROW(io.run(IoOp::kAppend, "p",
                      [&](int) {
                        ++attempts_seen;
                        throw StoreError(StoreError::Kind::kIo, "flaky",
                                         /*transient=*/true);
                      }),
               StoreError);
  EXPECT_EQ(attempts_seen, 3);
  EXPECT_EQ(io.stats().gave_up, 1);
}

TEST(IoContext, CorruptionKindsNeverRetry) {
  store::IoContext io(fast_policy(5), nullptr);
  int attempts_seen = 0;
  EXPECT_THROW(io.run(IoOp::kRead, "p",
                      [&](int) {
                        ++attempts_seen;
                        throw StoreError(StoreError::Kind::kBadChecksum,
                                         "corrupt");
                      }),
               StoreError);
  EXPECT_EQ(attempts_seen, 1);
}

TEST(IoContext, PlannedBackoffBudgetBoundsRetries) {
  store::RetryPolicy policy;
  policy.max_attempts = 1000;
  policy.base_delay_us = 64;
  policy.max_delay_us = 1 << 20;
  policy.jitter = 0.0;  // deterministic doubling: 64, 128, 256, ...
  policy.op_budget_us = 1000;
  store::IoContext io(policy, nullptr);
  int attempts_seen = 0;
  EXPECT_THROW(io.run(IoOp::kWrite, "p",
                      [&](int) {
                        ++attempts_seen;
                        throw StoreError(StoreError::Kind::kIo, "flaky",
                                         /*transient=*/true);
                      }),
               StoreError);
  // 64+128+256+512 = 960 fits the 1000 us budget; the next doubling does
  // not, so the op stops long before the 1000-attempt cap.
  EXPECT_EQ(attempts_seen, 5);
  EXPECT_LE(io.stats().backoff_us, policy.op_budget_us);
}

// --- framing under injected faults ---

TEST(FramingFaults, TornWriteLandsPrefixAndReadsAsClassifiedError) {
  TempDir dir("torn");
  const std::string path = dir.str() + "/file";
  std::string frame;
  store::append_frame(frame, "test", std::string(100, 'x'));

  ScriptedEnv env;
  IoOutcome torn;
  torn.kind = IoOutcome::Kind::kTornWrite;
  torn.offset = 17;
  env.script[IoOp::kWrite] = {torn};
  store::IoContext io(fast_policy(1), &env);
  store::write_file_atomic(path, frame, &io);  // succeeds: fault is silent

  std::string on_disk = read_bytes(path);
  EXPECT_EQ(on_disk.size(), 17u);
  EXPECT_EQ(on_disk, frame.substr(0, 17));
  EXPECT_EQ(io.stats().injected_torn, 1);
  try {
    store::MappedFile file(path);
    store::read_all_frames(file.view());
    FAIL() << "expected StoreError";
  } catch (const StoreError& e) {
    EXPECT_EQ(e.kind(), StoreError::Kind::kTruncated);
  }
}

TEST(FramingFaults, BitFlipFailsTheChecksum) {
  TempDir dir("flip");
  const std::string path = dir.str() + "/file";
  std::string frame;
  store::append_frame(frame, "test", std::string(100, 'x'));

  ScriptedEnv env;
  IoOutcome flip;
  flip.kind = IoOutcome::Kind::kBitFlip;
  flip.offset = 40;  // inside the payload
  flip.bit = 3;
  env.script[IoOp::kWrite] = {flip};
  store::IoContext io(fast_policy(1), &env);
  store::write_file_atomic(path, frame, &io);

  std::string on_disk = read_bytes(path);
  ASSERT_EQ(on_disk.size(), frame.size());
  EXPECT_NE(on_disk, frame);
  try {
    store::MappedFile file(path);
    store::read_all_frames(file.view());
    FAIL() << "expected StoreError";
  } catch (const StoreError& e) {
    EXPECT_EQ(e.kind(), StoreError::Kind::kBadChecksum);
  }
}

TEST(FramingFaults, CrashRenameStrandsTmpAndPublishesNothing) {
  TempDir dir("crash");
  const std::string path = dir.str() + "/file";
  ScriptedEnv env;
  IoOutcome crash;
  crash.kind = IoOutcome::Kind::kCrashRename;
  env.script[IoOp::kRename] = {crash};
  store::IoContext io(fast_policy(1), &env);
  store::write_file_atomic(path, "payload", &io);  // "succeeds": crash model
  EXPECT_FALSE(fs::exists(path));
  EXPECT_TRUE(fs::exists(path + ".tmp"));
  EXPECT_EQ(read_bytes(path + ".tmp"), "payload");
}

// The temp-leak regression: every *reported* failure of the atomic write
// cycle — injected or real, at any site — must remove the temp file
// before the error propagates. Only the crash model above strands it.
TEST(FramingFaults, ReportedFailuresNeverLeakTheTempFile) {
  TempDir dir("leak");
  struct Site {
    const char* label;
    IoOp op;
    IoOutcome outcome;
  };
  std::vector<Site> sites = {
      {"write ENOSPC", IoOp::kWrite, reported(IoOutcome::Kind::kEnospc, false)},
      {"write EIO", IoOp::kWrite, reported(IoOutcome::Kind::kEio, false)},
      {"fsync EIO", IoOp::kFsync, reported(IoOutcome::Kind::kEio, false)},
      {"rename EIO", IoOp::kRename, reported(IoOutcome::Kind::kEio, false)},
  };
  for (const Site& site : sites) {
    const std::string path = dir.str() + "/target";
    ScriptedEnv env;
    env.script[site.op] = {site.outcome};
    store::IoContext io(fast_policy(1), &env);
    EXPECT_THROW(store::write_file_atomic(path, "payload", &io), StoreError)
        << site.label;
    EXPECT_FALSE(fs::exists(path + ".tmp")) << site.label;
    EXPECT_FALSE(fs::exists(path)) << site.label;
  }
  // A real (non-injected) rename failure: the target is a directory.
  const std::string blocked = dir.str() + "/blocked";
  fs::create_directories(blocked);
  EXPECT_THROW(store::write_file_atomic(blocked, "payload"), StoreError);
  EXPECT_FALSE(fs::exists(blocked + ".tmp"));
}

TEST(FramingFaults, TransientWriteFaultRetriesInsideTheAtomicCycle) {
  TempDir dir("retry");
  const std::string path = dir.str() + "/file";
  ScriptedEnv env;
  env.script[IoOp::kWrite] = {reported(IoOutcome::Kind::kEnospc, true)};
  store::IoContext io(fast_policy(3), &env);
  store::write_file_atomic(path, "payload", &io);  // retry succeeds
  EXPECT_EQ(read_bytes(path), "payload");
  EXPECT_EQ(io.stats().retries, 1);
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(FramingFaults, TornAppendLandsPrefixAtTheLogTail) {
  TempDir dir("append");
  const std::string path = dir.str() + "/wal.log";
  store::append_file(path, "first-record|");
  ScriptedEnv env;
  IoOutcome torn;
  torn.kind = IoOutcome::Kind::kTornWrite;
  torn.offset = 4;
  env.script[IoOp::kAppend] = {torn};
  store::IoContext io(fast_policy(1), &env);
  store::append_file(path, "second-record|", &io);
  EXPECT_EQ(read_bytes(path), "first-record|seco");
}

// --- RecoveryManager ---

// A busy-but-small world, checkpointing into `dir`; identical in spirit to
// the checkpoint_resume_test fixture.
eval::WorldParams recovery_world(std::uint64_t seed) {
  eval::WorldParams params;
  params.days = 1;
  params.warmup_days = 0;
  params.corpus_pair_target = 40;
  params.corpus_dest_count = 5;
  params.public_dest_count = 15;
  params.public_traces_per_window = 30;
  params.platform.num_probes = 60;
  params.topology.num_transit = 12;
  params.topology.num_stub = 40;
  params.dynamics.interconnect_flap_per_day = 60.0;
  params.dynamics.egress_shift_per_day = 45.0;
  params.dynamics.adjacency_flap_per_day = 30.0;
  params.dynamics.te_community_churn_per_day = 80.0;
  params.dynamics.parrot_update_per_day = 150.0;
  params.seed = seed;
  params.telemetry = true;
  return params;
}

// Runs (optionally only to `stop_window`) and collects the per-window
// signal stream plus the final semantic stats, keyed for overwrite — the
// supervisor's re-delivery contract.
struct Collected {
  std::map<std::int64_t, std::string> signals;
  std::string semantic;
};

eval::World::Hooks collect_hooks(Collected& out) {
  eval::World::Hooks hooks;
  hooks.on_signals = [&out](std::int64_t window, TimePoint,
                            std::vector<signals::StalenessSignal>&& sigs) {
    std::string text;
    for (const auto& s : sigs) {
      text += s.to_string();
      text += '\n';
    }
    out.signals[window] = std::move(text);
  };
  return hooks;
}

Collected run_clean(const eval::WorldParams& params) {
  Collected out;
  eval::World world(params);
  world.run_all(collect_hooks(out));
  out.semantic = world.semantic_stats_json();
  return out;
}

std::int64_t windows_of(const eval::WorldParams& params) {
  return (params.days + params.warmup_days) * kSecondsPerDay /
         kBaseWindowSeconds;
}

TEST(RecoveryManager, SweepsStrayTmpIntoQuarantine) {
  TempDir dir("tmp");
  std::ofstream(dir.str() + "/snap-00000004.tmp") << "half-written";
  std::ofstream(dir.str() + "/wal.log.tmp") << "junk";
  std::ofstream(dir.str() + "/keep.dat") << "live";
  store::RecoveryManager manager(dir.str());
  store::RecoveryReport report = manager.scrub();
  EXPECT_EQ(report.stray_tmp, 2);
  EXPECT_FALSE(report.clean());
  EXPECT_FALSE(fs::exists(dir.str() + "/snap-00000004.tmp"));
  EXPECT_TRUE(fs::exists(manager.quarantine_dir() + "/snap-00000004.tmp"));
  EXPECT_TRUE(fs::exists(manager.quarantine_dir() + "/wal.log.tmp"));
  EXPECT_TRUE(fs::exists(dir.str() + "/keep.dat"));
  // Idempotent: a second scrub finds a healthy directory.
  EXPECT_TRUE(manager.scrub().clean());
}

TEST(RecoveryManager, QuarantineUniquifiesNameCollisions) {
  TempDir dir("collide");
  store::RecoveryManager manager(dir.str());
  for (int round = 0; round < 3; ++round) {
    std::ofstream(dir.str() + "/x.tmp") << "round " << round;
    manager.sweep_stray_tmp();
  }
  EXPECT_TRUE(fs::exists(manager.quarantine_dir() + "/x.tmp"));
  EXPECT_TRUE(fs::exists(manager.quarantine_dir() + "/x.tmp.1"));
  EXPECT_TRUE(fs::exists(manager.quarantine_dir() + "/x.tmp.2"));
}

TEST(RecoveryManager, QuarantinesCorruptSnapshotAndFallsBackToOlder) {
  eval::WorldParams params = recovery_world(81);
  TempDir dir("fallback");
  params.checkpoint_dir = dir.str();
  params.checkpoint_every = 2;
  {
    eval::World world(params);
    world.run_until(world.corpus_t0());
    world.initialize_corpus();
    world.run_until(world.start() + 8 * world.window_seconds());
  }
  std::vector<std::int64_t> snaps = store::list_snapshots(dir.str());
  ASSERT_GE(snaps.size(), 2u);
  const std::int64_t newest = snaps.back();
  const std::int64_t older = snaps[snaps.size() - 2];

  // Corrupt the newest snapshot in place (a torn write would look alike).
  const std::string newest_path =
      dir.str() + "/" + store::snapshot_name(newest);
  std::string bytes = read_bytes(newest_path);
  bytes[bytes.size() / 2] ^= 0x5A;
  std::ofstream(newest_path, std::ios::binary | std::ios::trunc) << bytes;

  store::RecoveryManager manager(dir.str());
  store::RecoveryReport report =
      manager.scrub(eval::World::fingerprint(params));
  EXPECT_EQ(report.snapshots_quarantined, 1);
  ASSERT_TRUE(report.snapshot.has_value());
  EXPECT_EQ(*report.snapshot, older);
  EXPECT_FALSE(fs::exists(newest_path));
  EXPECT_TRUE(fs::exists(manager.quarantine_dir() + "/" +
                         store::snapshot_name(newest)));

  // The scrubbed directory resumes — from the older snapshot + WAL.
  eval::WorldParams resumed = params;
  resumed.checkpoint_dir.clear();
  resumed.resume_from = dir.str();
  eval::World world(resumed);
  EXPECT_GE(world.completed_windows(), older);
}

TEST(RecoveryManager, TruncatesCorruptWalTailAndPreservesIt) {
  eval::WorldParams params = recovery_world(82);
  TempDir dir("waltail");
  params.checkpoint_dir = dir.str();
  {
    eval::World world(params);
    world.run_until(world.corpus_t0());
    world.initialize_corpus();
    world.run_until(world.start() + 4 * world.window_seconds());
  }
  const std::string wal_path = dir.str() + "/wal.log";
  const std::string good = read_bytes(wal_path);
  ASSERT_FALSE(good.empty());
  const std::size_t ops_before = store::wal_read(dir.str()).size();
  // A torn append: half a frame of garbage at the tail.
  store::append_file(wal_path, "garbage-that-is-not-a-frame");

  store::RecoveryManager manager(dir.str());
  store::RecoveryReport report = manager.scrub();
  EXPECT_TRUE(report.wal_truncated);
  EXPECT_EQ(report.wal_valid_bytes, good.size());
  EXPECT_EQ(report.wal_ops, ops_before);
  EXPECT_EQ(read_bytes(wal_path), good);
  // The severed tail is preserved in quarantine, not deleted.
  bool tail_preserved = false;
  for (const std::string& name : report.quarantined) {
    tail_preserved |= name.rfind("wal.tail-", 0) == 0;
  }
  EXPECT_TRUE(tail_preserved);
  EXPECT_EQ(store::wal_read(dir.str()).size(), ops_before);
  EXPECT_TRUE(manager.scrub().clean());
}

TEST(RecoveryManager, FingerprintMismatchQuarantinesEverySnapshot) {
  eval::WorldParams params = recovery_world(83);
  TempDir dir("wrongfp");
  params.checkpoint_dir = dir.str();
  params.checkpoint_every = 2;
  {
    eval::World world(params);
    world.run_until(world.corpus_t0());
    world.initialize_corpus();
    world.run_until(world.start() + 6 * world.window_seconds());
  }
  const std::size_t snaps = store::list_snapshots(dir.str()).size();
  ASSERT_GT(snaps, 0u);
  store::RecoveryManager manager(dir.str());
  store::RecoveryReport report = manager.scrub(/*expected_fingerprint=*/1);
  EXPECT_EQ(report.snapshots_quarantined, static_cast<int>(snaps));
  EXPECT_FALSE(report.snapshot.has_value());
  EXPECT_TRUE(store::list_snapshots(dir.str()).empty());
}

TEST(RecoveryManager, ScrubOfMissingDirectoryIsANoOp) {
  store::RecoveryManager manager("/nonexistent/rrr-recovery-test");
  EXPECT_TRUE(manager.scrub().clean());
}

// --- Supervisor ---

TEST(Supervisor, RequiresACheckpointDirectory) {
  EXPECT_THROW(eval::Supervisor(recovery_world(84)), std::invalid_argument);
}

// The in-process chaos grid in miniature: crash (destruct mid-run) at
// window k under silent+reported storage faults, then hand the directory
// to the supervisor — every point must finish unaided and reproduce the
// clean run's per-window signal stream and semantic stats byte for byte.
TEST(Supervisor, CrashWindowByIoSeedGridRecoversByteIdentically) {
  eval::WorldParams base = recovery_world(85);
  Collected clean = run_clean(base);
  ASSERT_FALSE(clean.signals.empty());

  fault::IoFaultPlan plan;
  plan.torn_write_rate = 0.05;
  plan.bit_flip_rate = 0.02;
  plan.enospc_rate = 0.02;
  plan.crash_rename_rate = 0.03;
  plan.transient_fraction = 0.9;

  const std::int64_t windows = windows_of(base);
  for (std::int64_t k : {windows / 4, windows / 2}) {
    for (std::uint64_t io_seed : {11u, 12u}) {
      const std::string label = "k=" + std::to_string(k) +
                                " io_seed=" + std::to_string(io_seed);
      TempDir dir("grid");
      eval::WorldParams params = base;
      params.checkpoint_dir = dir.str();
      params.io_fault_plan = plan;
      params.io_fault_plan.seed = io_seed;
      params.io_retry = fast_policy(3);

      Collected chaos;
      eval::World::Hooks hooks = collect_hooks(chaos);
      try {
        eval::World world(params);
        world.run_until(world.corpus_t0(), hooks);
        world.initialize_corpus();
        world.run_until(world.start() + k * world.window_seconds(), hooks);
        // The world goes out of scope here: a crash at window k.
      } catch (const StoreError&) {
        // A reported fault beat the crash to it — also a crash.
      }

      eval::WorldParams resumed = params;
      resumed.resume_from = dir.str();
      resumed.supervise = true;
      eval::SupervisorParams sup_params;
      sup_params.max_recoveries = 50;
      eval::Supervisor supervisor(resumed, sup_params);
      supervisor.run(hooks);
      chaos.semantic = supervisor.world().semantic_stats_json();

      EXPECT_EQ(chaos.signals, clean.signals) << label;
      EXPECT_EQ(chaos.semantic, clean.semantic) << label;
      // Hygiene: no live-looking debris outside corrupt/.
      for (const fs::directory_entry& entry :
           fs::directory_iterator(dir.str())) {
        EXPECT_FALSE(entry.path().string().ends_with(".tmp"))
            << label << ": stray " << entry.path();
      }
    }
  }
}

// Supervised from the start with guaranteed-permanent reported faults and
// no retries: the run *must* die mid-flight at least once, recover, and
// still converge to the clean answer — with the recovery visible in the
// event log.
TEST(Supervisor, SelfHealsMidRunStoreFailures) {
  eval::WorldParams base = recovery_world(86);
  Collected clean = run_clean(base);

  TempDir dir("heal");
  eval::WorldParams params = base;
  params.checkpoint_dir = dir.str();
  params.io_fault_plan.enospc_rate = 0.03;
  params.io_fault_plan.transient_fraction = 0.0;  // every fault permanent
  params.io_fault_plan.seed = 4;

  Collected chaos;
  eval::SupervisorParams sup_params;
  sup_params.max_recoveries = 50;
  eval::Supervisor supervisor(params, sup_params);
  supervisor.run(collect_hooks(chaos));
  chaos.semantic = supervisor.world().semantic_stats_json();

  ASSERT_GE(supervisor.recoveries().size(), 1u)
      << "fault plan never fired; the test exercised nothing";
  for (const eval::RecoveryEvent& event : supervisor.recoveries()) {
    EXPECT_GE(event.resume_window, 0);
    EXPECT_FALSE(event.error.empty());
  }
  EXPECT_EQ(chaos.signals, clean.signals);
  EXPECT_EQ(chaos.semantic, clean.semantic);

  // The final incarnation's registry carries the recovery counters.
  const std::string stats = supervisor.world().stats_json();
  EXPECT_NE(stats.find("rrr_recovery_attempts_total"), std::string::npos);
}

TEST(Supervisor, CleanRunNeedsNoRecoveries) {
  eval::WorldParams base = recovery_world(87);
  Collected clean = run_clean(base);
  TempDir dir("quiet");
  eval::WorldParams params = base;
  params.checkpoint_dir = dir.str();
  Collected supervised;
  eval::Supervisor supervisor(params);
  supervisor.run(collect_hooks(supervised));
  supervised.semantic = supervisor.world().semantic_stats_json();
  EXPECT_TRUE(supervisor.recoveries().empty());
  EXPECT_EQ(supervised.signals, clean.signals);
  EXPECT_EQ(supervised.semantic, clean.semantic);
}

TEST(Supervisor, RunSupervisedHonorsTheKnob) {
  eval::WorldParams params = recovery_world(88);
  // supervise=false: plain run, no checkpoint_dir required.
  std::vector<eval::RecoveryEvent> events;
  std::unique_ptr<eval::World> world =
      eval::run_supervised(params, {}, &events);
  ASSERT_NE(world, nullptr);
  EXPECT_TRUE(events.empty());
  EXPECT_EQ(world->completed_windows(), windows_of(params));
}

}  // namespace
}  // namespace rrr
