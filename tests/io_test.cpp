// Tests for the text serialization layer (src/io).
#include <gtest/gtest.h>

#include <sstream>

#include "io/serialize.h"

namespace rrr::io {
namespace {

bgp::BgpRecord sample_record() {
  bgp::BgpRecord record;
  record.time = TimePoint(123456);
  record.type = bgp::RecordType::kAnnouncement;
  record.collector = "rrc03";
  record.peer_asn = Asn(13030);
  record.peer_ip = *Ipv4::parse("195.66.224.175");
  record.vp = 7;
  record.prefix = *Prefix::parse("200.61.128.0/19");
  record.as_path = {Asn(13030), Asn(1299), Asn(2914), Asn(18747)};
  record.communities = {Community(Asn(13030), 2),
                        Community(Asn(13030), 51701)};
  return record;
}

TEST(BgpSerialization, RoundTripsEveryField) {
  bgp::BgpRecord original = sample_record();
  auto parsed = bgp_record_from_line(to_line(original));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->time, original.time);
  EXPECT_EQ(parsed->type, original.type);
  EXPECT_EQ(parsed->collector, original.collector);
  EXPECT_EQ(parsed->peer_asn, original.peer_asn);
  EXPECT_EQ(parsed->peer_ip, original.peer_ip);
  EXPECT_EQ(parsed->vp, original.vp);
  EXPECT_EQ(parsed->prefix, original.prefix);
  EXPECT_EQ(parsed->as_path, original.as_path);
  EXPECT_EQ(parsed->communities, original.communities);
}

TEST(BgpSerialization, WithdrawalsHaveEmptyAttributes) {
  bgp::BgpRecord record = sample_record();
  record.type = bgp::RecordType::kWithdrawal;
  record.as_path = AsPath{};
  record.communities = CommunitySet{};
  auto parsed = bgp_record_from_line(to_line(record));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, bgp::RecordType::kWithdrawal);
  EXPECT_TRUE(parsed->as_path.empty());
  EXPECT_TRUE(parsed->communities.empty());
}

TEST(BgpSerialization, RejectsMalformedLines) {
  EXPECT_FALSE(bgp_record_from_line("").has_value());
  EXPECT_FALSE(bgp_record_from_line("1|A|c|13030").has_value());
  EXPECT_FALSE(
      bgp_record_from_line("x|A|c|1|1.2.3.4|0|10.0.0.0/8||").has_value());
  EXPECT_FALSE(
      bgp_record_from_line("1|Q|c|1|1.2.3.4|0|10.0.0.0/8||").has_value());
  EXPECT_FALSE(
      bgp_record_from_line("1|A|c|1|1.2.3.4|0|10.0.0.0/99||").has_value());
}

// Table-driven hostile-input sweep: every entry is a line a damaged archive
// or a fault-injected replay could hand the parser. The contract is
// uniform — nullopt, never a throw, never UB.
TEST(BgpSerialization, MalformedLineTable) {
  const std::string valid = to_line(sample_record());
  struct Case {
    const char* label;
    std::string line;
  };
  std::vector<Case> cases = {
      {"truncated after type", "123456|A"},
      {"truncated mid-field", valid.substr(0, valid.size() / 2)},
      {"one field short", valid.substr(0, valid.rfind('|'))},
      {"extra trailing field", valid + "|surplus"},
      {"embedded NUL", valid.substr(0, 8) + std::string(1, '\0') +
                           valid.substr(8)},
      {"trailing NUL", valid + std::string(1, '\0')},
      {"oversized line",
       valid + "|" + std::string(70 * 1024, 'x')},  // > 64 KiB cap
      {"negative time", "-5|A|rrc03|13030|195.66.224.175|7|"
                        "200.61.128.0/19|13030|"},
      {"time overflow", "99999999999999999999|A|rrc03|13030|"
                        "195.66.224.175|7|200.61.128.0/19|13030|"},
      {"asn above 32 bits", "1|A|rrc03|4294967296|195.66.224.175|7|"
                            "200.61.128.0/19|13030|"},
      {"vp above 32 bits", "1|A|rrc03|13030|195.66.224.175|4294967296|"
                           "200.61.128.0/19|13030|"},
      {"bad peer ip", "1|A|rrc03|13030|195.66.224.999|7|"
                      "200.61.128.0/19|13030|"},
      {"bad prefix length", "1|A|rrc03|13030|195.66.224.175|7|"
                            "200.61.128.0/40|13030|"},
      {"junk in as path", "1|A|rrc03|13030|195.66.224.175|7|"
                          "200.61.128.0/19|13030 notanasn|"},
      {"junk community", "1|A|rrc03|13030|195.66.224.175|7|"
                         "200.61.128.0/19|13030|13030:bad"},
  };
  // Unbounded attribute lists (session-reset storms glue updates together).
  std::string long_path;
  for (int i = 0; i < 1500; ++i) long_path += "64512 ";
  cases.push_back({"as path over cap",
                   "1|A|rrc03|13030|195.66.224.175|7|200.61.128.0/19|" +
                       long_path + "|"});
  for (const Case& c : cases) {
    EXPECT_FALSE(bgp_record_from_line(c.line).has_value()) << c.label;
  }
  // The undamaged line still parses — the table is rejecting the damage,
  // not the format.
  EXPECT_TRUE(bgp_record_from_line(valid).has_value());
}

TEST(TracerouteSerialization, MalformedLineTable) {
  struct Case {
    const char* label;
    std::string text;
  };
  std::vector<Case> cases = {
      {"header one field short", "T|42|9|10.0.0.9|11.0.0.1|5555|777\n"},
      {"bad reached flag", "T|42|9|10.0.0.9|11.0.0.1|5555|777|2\n"},
      {"negative id", "T|-1|9|10.0.0.9|11.0.0.1|5555|777|1\n"},
      {"embedded NUL in header",
       std::string("T|42|9|10.0.0.9|11.0.0.1|5555|777|1\n").insert(
           4, 1, '\0')},
      {"hop with junk ttl",
       "T|42|9|10.0.0.9|11.0.0.1|5555|777|1\nH|x|1.2.3.4|0.5\n"},
      {"hop with junk rtt",
       "T|42|9|10.0.0.9|11.0.0.1|5555|777|1\nH|1|1.2.3.4|fast\n"},
      {"hop one field short",
       "T|42|9|10.0.0.9|11.0.0.1|5555|777|1\nH|1|1.2.3.4\n"},
  };
  for (const Case& c : cases) {
    std::stringstream buffer(c.text);
    std::size_t errors = 0;
    auto loaded = read_traceroutes(buffer, &errors);
    EXPECT_GE(errors, 1u) << c.label;
  }
  // Hop-count cap: a trace claiming thousands of hops is rejected rather
  // than buffered.
  std::stringstream flood;
  flood << "T|42|9|10.0.0.9|11.0.0.1|5555|777|1\n";
  for (int i = 0; i < 600; ++i) flood << "H|" << i << "|1.2.3.4|0.5\n";
  std::size_t errors = 0;
  auto loaded = read_traceroutes(flood, &errors);
  EXPECT_GE(errors, 1u);
  for (const tr::Traceroute& trace : loaded) {
    EXPECT_LE(trace.hops.size(), 512u);
  }
}

TEST(BgpSerialization, StreamRoundTripSkipsCommentsAndGarbage) {
  std::vector<bgp::BgpRecord> records = {sample_record(), sample_record()};
  records[1].time = TimePoint(999);
  std::stringstream buffer;
  buffer << "# a comment\n";
  write_bgp_records(buffer, records);
  buffer << "garbage line\n";
  std::size_t errors = 0;
  auto loaded = read_bgp_records(buffer, &errors);
  EXPECT_EQ(loaded.size(), 2u);
  EXPECT_EQ(errors, 1u);
  EXPECT_EQ(loaded[1].time, TimePoint(999));
}

tr::Traceroute sample_trace() {
  tr::Traceroute trace;
  trace.id = 42;
  trace.probe = 9;
  trace.src_ip = *Ipv4::parse("10.0.0.9");
  trace.dst_ip = *Ipv4::parse("11.0.0.1");
  trace.time = TimePoint(5555);
  trace.flow_id = 777;
  trace.reached = true;
  trace.hops = {{*Ipv4::parse("10.0.0.1"), 1.25},
                {std::nullopt, 0.0},
                {*Ipv4::parse("11.0.0.1"), 8.5}};
  return trace;
}

TEST(TracerouteSerialization, RoundTripsHopsIncludingStars) {
  std::stringstream buffer;
  write_traceroute(buffer, sample_trace());
  auto loaded = read_traceroutes(buffer);
  ASSERT_EQ(loaded.size(), 1u);
  const tr::Traceroute& trace = loaded[0];
  EXPECT_EQ(trace.id, 42u);
  EXPECT_EQ(trace.probe, 9u);
  EXPECT_TRUE(trace.reached);
  ASSERT_EQ(trace.hops.size(), 3u);
  EXPECT_TRUE(trace.hops[0].responded());
  EXPECT_NEAR(trace.hops[0].rtt_ms, 1.25, 1e-6);
  EXPECT_FALSE(trace.hops[1].responded());
  EXPECT_EQ(*trace.hops[2].ip, *Ipv4::parse("11.0.0.1"));
}

TEST(TracerouteSerialization, MultipleTracesInOneStream) {
  std::stringstream buffer;
  tr::Traceroute a = sample_trace();
  tr::Traceroute b = sample_trace();
  b.id = 43;
  b.hops.clear();
  b.reached = false;
  write_traceroutes(buffer, {a, b});
  auto loaded = read_traceroutes(buffer);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].hops.size(), 3u);
  EXPECT_TRUE(loaded[1].hops.empty());
  EXPECT_FALSE(loaded[1].reached);
}

TEST(TracerouteSerialization, OrphanHopLinesAreErrors) {
  std::stringstream buffer;
  buffer << "H|1|1.2.3.4|0.5\n";
  std::size_t errors = 0;
  auto loaded = read_traceroutes(buffer, &errors);
  EXPECT_TRUE(loaded.empty());
  EXPECT_EQ(errors, 1u);
}

// --- archive format versioning ---

TEST(ArchiveVersion, WritersStampTheCurrentHeader) {
  std::stringstream bgp_buffer;
  write_bgp_records(bgp_buffer, {sample_record()});
  std::string first;
  ASSERT_TRUE(std::getline(bgp_buffer, first));
  EXPECT_EQ(first, version_header());

  std::stringstream trace_buffer;
  write_traceroutes(trace_buffer, {sample_trace()});
  ASSERT_TRUE(std::getline(trace_buffer, first));
  EXPECT_EQ(first, version_header());
}

TEST(ArchiveVersion, ParseHeaderTable) {
  struct Case {
    const char* line;
    std::optional<int> want;
  };
  std::vector<Case> cases = {
      {"#rrr-io v1", 1},
      {"#rrr-io v2", 2},
      {"#rrr-io v0", 0},
      {"#rrr-io v12", 12},
      {"# a plain comment", std::nullopt},
      {"#rrr-io", std::nullopt},
      {"#rrr-io v", std::nullopt},
      {"#rrr-io vx", std::nullopt},
      {"#rrr-io v-1", std::nullopt},
      {"#rrr-io v1 trailing", std::nullopt},
      {"rrr-io v1", std::nullopt},
      {"", std::nullopt},
  };
  for (const Case& c : cases) {
    EXPECT_EQ(parse_version_header(c.line), c.want) << "line: " << c.line;
  }
}

// Legacy archives predate the header; both readers must keep accepting
// them, along with ordinary comments and a same/older-version header.
TEST(ArchiveVersion, LegacyAndCurrentArchivesAreAccepted) {
  std::stringstream legacy;
  legacy << "# some tool wrote this before versioning\n"
         << to_line(sample_record()) << "\n";
  EXPECT_EQ(read_bgp_records(legacy).size(), 1u);

  std::stringstream current;
  write_bgp_records(current, {sample_record()});
  EXPECT_EQ(read_bgp_records(current).size(), 1u);

  std::stringstream older;
  older << "#rrr-io v0\n" << to_line(sample_record()) << "\n";
  EXPECT_EQ(read_bgp_records(older).size(), 1u);
}

// A future-version archive is a hard, diagnosable error — the reader must
// not silently skip every line it cannot understand.
TEST(ArchiveVersion, FutureVersionThrowsFromBothReaders) {
  const std::string header =
      "#rrr-io v" + std::to_string(kIoFormatVersion + 1);
  std::stringstream bgp_buffer;
  bgp_buffer << header << "\n" << to_line(sample_record()) << "\n";
  try {
    read_bgp_records(bgp_buffer);
    FAIL() << "future-version BGP archive was accepted";
  } catch (const VersionMismatchError& e) {
    EXPECT_EQ(e.found(), kIoFormatVersion + 1);
    EXPECT_NE(std::string(e.what()).find("v2"), std::string::npos);
  }

  std::stringstream trace_buffer;
  trace_buffer << header << "\n";
  write_traceroute(trace_buffer, sample_trace());
  EXPECT_THROW(read_traceroutes(trace_buffer), VersionMismatchError);
}

}  // namespace
}  // namespace rrr::io
