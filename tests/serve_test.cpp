// The staleness query service (serve/): snapshot publication, route
// grammar, golden JSON bodies, the HTTP path end-to-end, reader/driver
// concurrency (the TSAN targets), and the serving-attached determinism
// contract.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "eval/world.h"
#include "obs/http_export.h"
#include "serve/http_client.h"
#include "serve/service.h"
#include "serve/snapshot.h"

namespace rrr::serve {
namespace {

tr::PairKey pair_of(std::uint32_t probe, const char* dst) {
  return tr::PairKey{probe, Ipv4::parse(dst).value()};
}

signals::StalenessSignal signal_of(const tr::PairKey& pair,
                                   signals::Technique technique,
                                   std::int64_t window, std::int64_t seconds,
                                   std::size_t border_index,
                                   std::int64_t span_seconds) {
  signals::StalenessSignal s;
  s.pair = pair;
  s.technique = technique;
  s.window = window;
  s.time = TimePoint(seconds);
  s.border_index = border_index;
  s.span_seconds = span_seconds;
  return s;
}

// Three-pair synthetic world, one published window: a stale pair with two
// signals, a fresh pair, an unknown pair. Pair order here is already
// sorted, matching what pair_states() hands the service.
void publish_sample(StalenessService& service) {
  const tr::PairKey stale = pair_of(7, "10.0.0.1");
  const tr::PairKey unknown = pair_of(7, "10.0.0.2");
  const tr::PairKey fresh = pair_of(9, "10.0.0.2");
  std::vector<signals::PairStateView> states = {
      {stale, tr::Freshness::kStale, 3, 2},
      {unknown, tr::Freshness::kUnknown, 1, 0},
      {fresh, tr::Freshness::kFresh, 0, 0},
  };
  std::vector<signals::StalenessSignal> sigs = {
      signal_of(stale, signals::Technique::kBgpCommunity, 5, 4500,
                signals::kWholePath, 900),
      signal_of(stale, signals::Technique::kTraceBorder, 5, 4500, 2, 3600),
  };
  service.on_window(states, /*table_epoch=*/42, /*window=*/5,
                    TimePoint(4500), sigs);
}

std::string body_of(const StalenessService& service,
                    const std::string& target, int expect_status) {
  std::optional<obs::HttpResponse> response = service.handle(target);
  EXPECT_TRUE(response.has_value()) << target;
  if (!response) return "";
  EXPECT_EQ(response->status, expect_status) << target;
  EXPECT_EQ(response->content_type, "application/json") << target;
  return response->body;
}

TEST(SnapshotPublisher, StartsEmptyAndSwapsWholeSnapshots) {
  SnapshotPublisher publisher;
  SnapshotPtr initial = publisher.read();
  ASSERT_NE(initial, nullptr);
  EXPECT_EQ(initial->version, 0u);
  EXPECT_EQ(initial->window, -1);
  EXPECT_TRUE(initial->pairs.empty());

  auto next = std::make_shared<ServingSnapshot>();
  next->version = 1;
  next->window = 9;
  publisher.publish(next);
  EXPECT_EQ(publisher.read()->window, 9);
  // A reader holding the old snapshot keeps a valid object.
  EXPECT_EQ(initial->window, -1);
}

TEST(SnapshotFind, BinarySearchHitsAndMisses) {
  StalenessService service;
  publish_sample(service);
  SnapshotPtr snap = service.snapshot();
  ASSERT_EQ(snap->pairs.size(), 3u);
  EXPECT_NE(snap->find(pair_of(7, "10.0.0.1")), nullptr);
  EXPECT_NE(snap->find(pair_of(9, "10.0.0.2")), nullptr);
  EXPECT_EQ(snap->find(pair_of(8, "10.0.0.1")), nullptr);
  EXPECT_EQ(snap->find(pair_of(7, "10.0.0.3")), nullptr);
}

TEST(ServeRoutes, EmptyWorldGoldenBodies) {
  StalenessService service;
  EXPECT_EQ(body_of(service, "/v1/pairs", 200),
            "{\"schema\":\"rrr-serve-v1\",\"version\":0,\"window\":-1,"
            "\"time\":0,\"table_epoch\":0,\"corpus\":0,\"counts\":{"
            "\"fresh\":0,\"stale\":0,\"unknown\":0},\"pairs\":[],"
            "\"returned\":0}\n");
  EXPECT_EQ(body_of(service, "/v1/refresh-queue", 200),
            "{\"schema\":\"rrr-serve-v1\",\"version\":0,\"window\":-1,"
            "\"time\":0,\"table_epoch\":0,\"k\":20,\"stale_total\":0,"
            "\"queue\":[]}\n");
  EXPECT_EQ(body_of(service, "/v1/verdict?src=1&dst=10.0.0.1", 404),
            "{\"error\":\"unknown pair: src=1 dst=10.0.0.1\","
            "\"status\":404}\n");
  EXPECT_EQ(body_of(service, "/v1/signals?src=1&dst=10.0.0.1", 404),
            "{\"error\":\"unknown pair: src=1 dst=10.0.0.1\","
            "\"status\":404}\n");
}

TEST(ServeRoutes, PopulatedGoldenBodies) {
  StalenessService service;
  publish_sample(service);
  EXPECT_EQ(
      body_of(service, "/v1/verdict?src=7&dst=10.0.0.1", 200),
      "{\"schema\":\"rrr-serve-v1\",\"version\":1,\"window\":5,"
      "\"time\":4500,\"table_epoch\":42,"
      "\"pair\":{\"probe\":7,\"dst\":\"10.0.0.1\"},"
      "\"freshness\":\"stale\",\"watched_window\":3,\"active_signals\":2,"
      "\"stale_since_window\":5,\"signals_total\":2,"
      "\"last_signal\":{\"window\":5,\"time\":4500,"
      "\"technique\":\"border\",\"border_index\":2,"
      "\"span_seconds\":3600}}\n");
  EXPECT_EQ(
      body_of(service, "/v1/signals?src=7&dst=10.0.0.1", 200),
      "{\"schema\":\"rrr-serve-v1\",\"version\":1,\"window\":5,"
      "\"time\":4500,\"table_epoch\":42,"
      "\"pair\":{\"probe\":7,\"dst\":\"10.0.0.1\"},\"history_cap\":32,"
      "\"signals_total\":2,\"dropped\":0,\"signals\":["
      "{\"window\":5,\"time\":4500,\"technique\":\"community\","
      "\"border_index\":-1,\"span_seconds\":900},"
      "{\"window\":5,\"time\":4500,\"technique\":\"border\","
      "\"border_index\":2,\"span_seconds\":3600}]}\n");
  EXPECT_EQ(
      body_of(service, "/v1/pairs", 200),
      "{\"schema\":\"rrr-serve-v1\",\"version\":1,\"window\":5,"
      "\"time\":4500,\"table_epoch\":42,\"corpus\":3,"
      "\"counts\":{\"fresh\":1,\"stale\":1,\"unknown\":1},\"pairs\":["
      "{\"probe\":7,\"dst\":\"10.0.0.1\",\"freshness\":\"stale\","
      "\"watched_window\":3,\"active_signals\":2,"
      "\"stale_since_window\":5,\"signals_total\":2},"
      "{\"probe\":7,\"dst\":\"10.0.0.2\",\"freshness\":\"unknown\","
      "\"watched_window\":1,\"active_signals\":0,"
      "\"stale_since_window\":-1,\"signals_total\":0},"
      "{\"probe\":9,\"dst\":\"10.0.0.2\",\"freshness\":\"fresh\","
      "\"watched_window\":0,\"active_signals\":0,"
      "\"stale_since_window\":-1,\"signals_total\":0}],"
      "\"returned\":3}\n");
  EXPECT_EQ(
      body_of(service, "/v1/refresh-queue?k=2", 200),
      "{\"schema\":\"rrr-serve-v1\",\"version\":1,\"window\":5,"
      "\"time\":4500,\"table_epoch\":42,\"k\":2,\"stale_total\":1,"
      "\"queue\":[{\"rank\":1,\"probe\":7,\"dst\":\"10.0.0.1\","
      "\"stale_since_window\":5,\"active_signals\":2,\"signals_total\":2,"
      "\"last_technique\":\"border\"}]}\n");
}

TEST(ServeRoutes, FiltersAndLimits) {
  StalenessService service;
  publish_sample(service);
  // freshness filter keeps only matching verdicts; returned reflects it.
  std::string stale_only = body_of(service, "/v1/pairs?freshness=stale", 200);
  EXPECT_NE(stale_only.find("\"returned\":1"), std::string::npos);
  EXPECT_EQ(stale_only.find("\"freshness\":\"fresh\""), std::string::npos);
  // limit truncates but counts still describe the whole corpus.
  std::string limited = body_of(service, "/v1/pairs?limit=1", 200);
  EXPECT_NE(limited.find("\"corpus\":3"), std::string::npos);
  EXPECT_NE(limited.find("\"returned\":1"), std::string::npos);
  // signals limit keeps the newest events and reports the drop.
  std::string one = body_of(service, "/v1/signals?src=7&dst=10.0.0.1&limit=1",
                            200);
  EXPECT_NE(one.find("\"dropped\":1"), std::string::npos);
  EXPECT_EQ(one.find("\"technique\":\"community\""), std::string::npos);
  EXPECT_NE(one.find("\"technique\":\"border\""), std::string::npos);
  // limit=0 is valid: empty page, full bookkeeping.
  std::string none = body_of(service, "/v1/pairs?limit=0", 200);
  EXPECT_NE(none.find("\"pairs\":[]"), std::string::npos);
}

TEST(ServeRoutes, MalformedQueryRejectionTable) {
  StalenessService service;
  publish_sample(service);
  struct Case {
    const char* target;
    int status;
    const char* message;  // substring of the error body
  };
  const Case cases[] = {
      {"/v1/verdict", 400, "missing required parameter: src"},
      {"/v1/verdict?src=7", 400, "missing required parameter: dst"},
      {"/v1/verdict?src=7&dst=10.0.0.1&x=1", 400,
       "unknown query parameter: x"},
      {"/v1/verdict?src=-1&dst=10.0.0.1", 400, "src is not a probe id"},
      {"/v1/verdict?src=99999999999&dst=10.0.0.1", 400,
       "src is not a probe id"},
      {"/v1/verdict?src=7&dst=banana", 400,
       "dst is not a dotted-quad address"},
      {"/v1/verdict?src=7&src=8&dst=10.0.0.1", 400,
       "duplicate query parameter: src"},
      {"/v1/pairs?freshness=wibble", 400,
       "freshness must be fresh|stale|unknown"},
      {"/v1/pairs?limit=abc", 400, "limit is not a non-negative integer"},
      {"/v1/pairs?limit=-3", 400, "limit is not a non-negative integer"},
      {"/v1/pairs?limit=1&limit=2", 400, "duplicate query parameter: limit"},
      {"/v1/pairs?k=3", 400, "unknown query parameter: k"},
      {"/v1/pairs?=5", 400, "empty key"},
      {"/v1/pairs?&", 400, "empty query parameter"},
      {"/v1/refresh-queue?k", 400, "query parameter without '='"},
      {"/v1/refresh-queue?k=abc", 400, "k is not a non-negative integer"},
      {"/v1/refresh-queue?k=10001", 400, "k is not a non-negative integer"},
      {"/v1/nope", 404, "unknown /v1 route: /v1/nope"},
  };
  for (const Case& c : cases) {
    std::string body = body_of(service, c.target, c.status);
    EXPECT_NE(body.find(c.message), std::string::npos)
        << c.target << " -> " << body;
  }
  // Bare "?" is not an error: no parameters at all.
  EXPECT_EQ(service.handle("/v1/pairs?")->status, 200);
  // Paths outside /v1 fall through to the server's fixed routes.
  EXPECT_FALSE(service.handle("/healthz").has_value());
  EXPECT_FALSE(service.handle("/stats.json").has_value());
  EXPECT_FALSE(service.handle("/").has_value());
}

TEST(ServeRoutes, HistoryRingBoundsEvidence) {
  ServiceParams params;
  params.history_cap = 4;
  StalenessService service(params);
  const tr::PairKey pair = pair_of(3, "10.1.0.1");
  std::vector<signals::PairStateView> states = {
      {pair, tr::Freshness::kStale, 0, 1}};
  for (std::int64_t w = 0; w < 10; ++w) {
    std::vector<signals::StalenessSignal> sigs = {signal_of(
        pair, signals::Technique::kBgpAsPath, w, 900 * (w + 1),
        signals::kWholePath, 900)};
    service.on_window(states, 0, w, TimePoint(900 * (w + 1)), sigs);
  }
  SnapshotPtr snap = service.snapshot();
  const PairVerdict* verdict = snap->find(pair);
  ASSERT_NE(verdict, nullptr);
  EXPECT_EQ(verdict->signals_total, 10u);
  ASSERT_EQ(verdict->history.size(), 4u);
  EXPECT_EQ(verdict->history.front().window, 6);
  EXPECT_EQ(verdict->history.back().window, 9);
  // stale_since pins the first signal of the episode even though the ring
  // dropped it: it was stamped while the evidence was still present.
  EXPECT_EQ(verdict->stale_since_window, 0);
  std::string body = body_of(service, "/v1/signals?src=3&dst=10.1.0.1", 200);
  EXPECT_NE(body.find("\"dropped\":6"), std::string::npos);
}

TEST(ServeRoutes, StaleEpisodeClearsOnFreshness) {
  StalenessService service;
  const tr::PairKey pair = pair_of(3, "10.1.0.1");
  std::vector<signals::StalenessSignal> sigs = {signal_of(
      pair, signals::Technique::kBgpAsPath, 1, 900, signals::kWholePath,
      900)};
  std::vector<signals::PairStateView> stale = {
      {pair, tr::Freshness::kStale, 0, 1}};
  service.on_window(stale, 0, 1, TimePoint(900), sigs);
  EXPECT_EQ(service.snapshot()->find(pair)->stale_since_window, 1);
  // Refreshed: the episode ends; a later episode re-stamps.
  std::vector<signals::PairStateView> fresh = {
      {pair, tr::Freshness::kFresh, 2, 0}};
  service.on_window(fresh, 0, 2, TimePoint(1800), {});
  EXPECT_EQ(service.snapshot()->find(pair)->stale_since_window, -1);
  std::vector<signals::StalenessSignal> again = {signal_of(
      pair, signals::Technique::kTraceSubpath, 3, 2700, signals::kWholePath,
      900)};
  service.on_window(stale, 0, 3, TimePoint(2700), again);
  EXPECT_EQ(service.snapshot()->find(pair)->stale_since_window, 3);
  EXPECT_EQ(service.snapshot()->version, 3u);
  EXPECT_EQ(service.windows_published(), 3u);
}

TEST(ServeRoutes, RefreshQueueRanksStalestFirst) {
  StalenessService service;
  const tr::PairKey oldest = pair_of(1, "10.0.0.1");
  const tr::PairKey busiest = pair_of(2, "10.0.0.1");
  const tr::PairKey newest = pair_of(3, "10.0.0.1");
  // Window 1: `oldest` goes stale.
  std::vector<signals::PairStateView> w1 = {
      {oldest, tr::Freshness::kStale, 0, 1},
      {busiest, tr::Freshness::kFresh, 0, 0},
      {newest, tr::Freshness::kFresh, 0, 0},
  };
  service.on_window(
      w1, 0, 1, TimePoint(900),
      {signal_of(oldest, signals::Technique::kBgpAsPath, 1, 900,
                 signals::kWholePath, 900)});
  // Window 2: the other two go stale; `busiest` has more active signals.
  std::vector<signals::PairStateView> w2 = {
      {oldest, tr::Freshness::kStale, 0, 1},
      {busiest, tr::Freshness::kStale, 0, 3},
      {newest, tr::Freshness::kStale, 0, 1},
  };
  service.on_window(
      w2, 0, 2, TimePoint(1800),
      {signal_of(busiest, signals::Technique::kBgpBurst, 2, 1800,
                 signals::kWholePath, 900),
       signal_of(newest, signals::Technique::kColocation, 2, 1800,
                 signals::kWholePath, 900)});
  SnapshotPtr snap = service.snapshot();
  ASSERT_EQ(snap->refresh_queue.size(), 3u);
  EXPECT_EQ(snap->pairs[snap->refresh_queue[0]].pair, oldest);   // stalest
  EXPECT_EQ(snap->pairs[snap->refresh_queue[1]].pair, busiest);  // more active
  EXPECT_EQ(snap->pairs[snap->refresh_queue[2]].pair, newest);
}

TEST(ServeHttp, EndToEndOverRealSocket) {
  StalenessService service;
  publish_sample(service);
  obs::HttpHandlers handlers;
  handlers.api = [&service](const std::string& target) {
    return service.handle(target);
  };
  obs::HttpServer server(0, std::move(handlers));

  // Routed body over the wire == the in-process body, status preserved.
  std::optional<HttpResult> ok =
      http_get(server.port(), "/v1/verdict?src=7&dst=10.0.0.1");
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->status, 200);
  EXPECT_EQ(ok->body, service.handle("/v1/verdict?src=7&dst=10.0.0.1")->body);

  std::optional<HttpResult> bad =
      http_get(server.port(), "/v1/verdict?src=x&dst=10.0.0.1");
  ASSERT_TRUE(bad.has_value());
  EXPECT_EQ(bad->status, 400);

  std::optional<HttpResult> missing =
      http_get(server.port(), "/v1/verdict?src=1&dst=9.9.9.9");
  ASSERT_TRUE(missing.has_value());
  EXPECT_EQ(missing->status, 404);

  // Fixed routes still work next to the api handler.
  std::optional<HttpResult> healthz = http_get(server.port(), "/healthz");
  ASSERT_TRUE(healthz.has_value());
  EXPECT_EQ(healthz->status, 200);
  EXPECT_EQ(healthz->body, "ok\n");

  std::optional<HttpResult> nothing = http_get(server.port(), "/nothing");
  ASSERT_TRUE(nothing.has_value());
  EXPECT_EQ(nothing->status, 404);
}

// TSAN target: HTTP readers resolve routes on live sockets while the
// driver publishes new snapshots as fast as it can. Any missing release/
// acquire edge between on_window and handle shows up here.
TEST(ServeConcurrency, QueryDuringWindowCloseIsRaceFree) {
  StalenessService service;
  publish_sample(service);
  obs::HttpHandlers handlers;
  handlers.api = [&service](const std::string& target) {
    return service.handle(target);
  };
  obs::HttpServer server(0, std::move(handlers));

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  std::atomic<std::int64_t> served{0};
  const char* targets[] = {
      "/v1/pairs?limit=100",
      "/v1/verdict?src=7&dst=10.0.0.1",
      "/v1/signals?src=7&dst=10.0.0.1",
      "/v1/refresh-queue?k=5",
  };
  // Two socket readers plus two direct-handle readers: the socket pair
  // exercises the full HTTP path, the direct pair maximizes pressure on
  // the publish/read edge itself.
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      while (!stop.load(std::memory_order_relaxed)) {
        std::optional<HttpResult> result =
            http_get(server.port(), targets[r]);
        if (result && result->status == 200) {
          served.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int r = 2; r < 4; ++r) {
    readers.emplace_back([&, r] {
      while (!stop.load(std::memory_order_relaxed)) {
        std::optional<obs::HttpResponse> response =
            service.handle(targets[r]);
        if (response && response->status == 200) {
          served.fetch_add(1, std::memory_order_relaxed);
        }
        // Hold a snapshot across publishes; it must stay valid.
        SnapshotPtr held = service.snapshot();
        if (held->window >= 0 && held->pairs.empty()) {
          ADD_FAILURE() << "published snapshot lost its pairs";
        }
      }
    });
  }

  // Driver: publish at least 200 windows of evolving state, and keep
  // publishing until every reader pool has been served (one core can run
  // the driver to completion before a reader finishes a single request).
  const tr::PairKey stale = pair_of(7, "10.0.0.1");
  const tr::PairKey unknown = pair_of(7, "10.0.0.2");
  const tr::PairKey fresh = pair_of(9, "10.0.0.2");
  for (std::int64_t w = 6; w < 206 || (served.load() < 8 && w < 200000);
       ++w) {
    std::vector<signals::PairStateView> states = {
        {stale, tr::Freshness::kStale, 3, 2},
        {unknown, tr::Freshness::kUnknown, 1, 0},
        {fresh,
         w % 2 == 0 ? tr::Freshness::kFresh : tr::Freshness::kStale, 0,
         w % 2 == 0 ? 0u : 1u},
    };
    std::vector<signals::StalenessSignal> sigs = {signal_of(
        stale, signals::Technique::kBgpAsPath, w, 900 * w,
        signals::kWholePath, 900)};
    service.on_window(states, static_cast<std::uint64_t>(w), w,
                      TimePoint(900 * w), sigs);
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();
  EXPECT_GE(service.windows_published(), 201u);
  EXPECT_GE(served.load(), 8);
}

// Determinism contract: attaching the serving layer to a World (with a
// reader hammering it) leaves the semantic signal stream byte-identical
// to the unserved run.
TEST(ServeWorld, AttachingServiceDoesNotMoveTheSignalStream) {
  eval::WorldParams params;
  params.days = 2;
  params.warmup_days = 1;
  params.corpus_pair_target = 120;
  params.corpus_dest_count = 10;
  params.public_dest_count = 40;
  params.public_traces_per_window = 100;
  params.platform.num_probes = 120;
  params.topology.num_transit = 24;
  params.topology.num_stub = 80;
  params.seed = 11;

  auto run = [&](bool serve) {
    eval::World world(params);
    StalenessService service;
    std::atomic<bool> stop{false};
    std::thread reader;
    if (serve) {
      world.attach_serving(&service);
      reader = std::thread([&] {
        while (!stop.load(std::memory_order_relaxed)) {
          (void)service.handle("/v1/pairs?limit=20");
          (void)service.handle("/v1/refresh-queue?k=5");
        }
      });
    }
    std::string stream;
    eval::World::Hooks hooks;
    hooks.on_signals = [&](std::int64_t window, TimePoint,
                           std::vector<signals::StalenessSignal>&& sigs) {
      for (const signals::StalenessSignal& s : sigs) {
        stream += std::to_string(window) + ":" + s.to_string() + "\n";
      }
    };
    world.run_all(hooks);
    if (serve) {
      stop.store(true, std::memory_order_relaxed);
      reader.join();
      EXPECT_GT(service.windows_published(), 0u);
      // The final snapshot mirrors the engine's corpus, and its refresh
      // queue holds exactly the pairs it reported stale. (The engine's own
      // stale set can shrink after the last window publishes — the daily
      // recalibration runs after the boundary — so compare within the
      // snapshot, not against the post-run engine.)
      SnapshotPtr snap = service.snapshot();
      EXPECT_EQ(snap->pairs.size(), world.engine().pair_states().size());
      EXPECT_EQ(snap->refresh_queue.size(), snap->stale);
    }
    return stream;
  };

  const std::string without = run(false);
  const std::string with = run(true);
  EXPECT_FALSE(without.empty());
  EXPECT_EQ(without, with);
}

}  // namespace
}  // namespace rrr::serve
