// Tests for the control plane: Gao-Rexford route computation, forwarding
// resolution, event application, and attribute (community) semantics.
#include <gtest/gtest.h>

#include <set>

#include "routing/control_plane.h"
#include "topology/builder.h"

namespace rrr::routing {
namespace {

using topo::AsIndex;
using topo::Topology;

topo::TopologyParams small_params(std::uint64_t seed = 21) {
  topo::TopologyParams params;
  params.num_tier1 = 4;
  params.num_transit = 16;
  params.num_stub = 50;
  params.num_ixps = 4;
  params.seed = seed;
  return params;
}

class RoutingFixture : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    topology_ = topo::build_topology(small_params(GetParam()));
    cp_ = std::make_unique<ControlPlane>(topology_, GetParam());
  }
  Topology topology_;
  std::unique_ptr<ControlPlane> cp_;
};

TEST_P(RoutingFixture, EveryAsReachesEveryOrigin) {
  // The hierarchy guarantees connectivity: stubs buy transit, transits
  // connect upward to the tier-1 clique.
  for (AsIndex origin = 0; origin < topology_.as_count(); origin += 7) {
    const RouteTable& table = cp_->table_for(origin);
    for (AsIndex viewer = 0; viewer < topology_.as_count(); ++viewer) {
      EXPECT_TRUE(table.at(viewer).reachable())
          << topology_.as_at(viewer).asn.to_string() << " cannot reach "
          << topology_.as_at(origin).asn.to_string();
    }
  }
}

TEST_P(RoutingFixture, PathsAreValleyFree) {
  // Once a route goes down (provider->customer) or sideways (peer), it must
  // never go up or sideways again.
  for (AsIndex origin = 0; origin < topology_.as_count(); origin += 11) {
    const RouteTable& table = cp_->table_for(origin);
    for (AsIndex viewer = 0; viewer < topology_.as_count(); ++viewer) {
      const Route& route = table.at(viewer);
      if (!route.reachable() || route.path.size() < 3) continue;
      // Walk the path from the viewer: classify each edge.
      bool seen_down_or_peer = false;
      for (std::size_t i = 0; i + 1 < route.path.size(); ++i) {
        AsIndex from = topology_.index_of(route.path[i]);
        AsIndex to = topology_.index_of(route.path[i + 1]);
        topo::NeighborKind kind = topo::NeighborKind::kPeer;
        for (const topo::Neighbor& nb : topology_.neighbors(from)) {
          if (nb.as == to) kind = nb.kind;
        }
        // Traffic from viewer toward origin: the route was learned in the
        // opposite direction. Edge from->to is "up" when `to` is from's
        // provider.
        bool up = kind == topo::NeighborKind::kProvider;
        bool peer = kind == topo::NeighborKind::kPeer;
        if (seen_down_or_peer) {
          EXPECT_FALSE(up || peer)
              << "valley in path " << to_string(route.path);
        }
        if (!up) seen_down_or_peer = true;
      }
    }
  }
}

TEST_P(RoutingFixture, PathsContainNoLoops) {
  for (AsIndex origin = 0; origin < topology_.as_count(); origin += 13) {
    const RouteTable& table = cp_->table_for(origin);
    for (AsIndex viewer = 0; viewer < topology_.as_count(); ++viewer) {
      const Route& route = table.at(viewer);
      std::set<std::uint32_t> seen;
      for (Asn asn : route.path) {
        EXPECT_TRUE(seen.insert(asn.number()).second)
            << "loop in " << to_string(route.path);
      }
    }
  }
}

TEST_P(RoutingFixture, ForwardingFollowsControlPlane) {
  AsIndex origin = 3 % static_cast<AsIndex>(topology_.as_count());
  Ipv4 target = Ipv4(topo::as_block(origin).network().value() + 1);
  for (AsIndex src = 0; src < topology_.as_count(); src += 9) {
    ForwardPath path = cp_->resolver().resolve(
        src, topology_.as_at(src).pops.front(), target, 42);
    const Route& route = cp_->table_for(origin).at(src);
    ASSERT_EQ(path.reachable, route.reachable());
    if (!path.reachable) continue;
    ASSERT_EQ(path.as_path.size(), route.path.size());
    for (std::size_t i = 0; i < path.as_path.size(); ++i) {
      EXPECT_EQ(topology_.as_at(path.as_path[i]).asn, route.path[i]);
    }
    EXPECT_EQ(path.crossings.size(), path.as_path.size() - 1);
    // Crossings must traverse active interconnects of the right links.
    for (std::size_t i = 0; i < path.crossings.size(); ++i) {
      const BorderCrossing& crossing = path.crossings[i];
      EXPECT_EQ(crossing.from_as, path.as_path[i]);
      EXPECT_EQ(crossing.to_as, path.as_path[i + 1]);
      EXPECT_TRUE(cp_->state().interconnect_active(crossing.interconnect));
    }
  }
}

TEST_P(RoutingFixture, SameFlowSamePath) {
  AsIndex origin = 5 % static_cast<AsIndex>(topology_.as_count());
  Ipv4 target = Ipv4(topo::as_block(origin).network().value() + 1);
  AsIndex src = static_cast<AsIndex>(topology_.as_count() - 1);
  ForwardPath a = cp_->resolver().resolve(
      src, topology_.as_at(src).pops.front(), target, 1234);
  ForwardPath b = cp_->resolver().resolve(
      src, topology_.as_at(src).pops.front(), target, 1234);
  EXPECT_EQ(a.hops, b.hops);
  EXPECT_TRUE(a.same_border_path(b));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutingFixture, ::testing::Values(1, 2, 3));

class EventFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    topology_ = topo::build_topology(small_params(2));
    cp_ = std::make_unique<ControlPlane>(topology_, 2);
  }
  // A link with >= 2 interconnects, crossed by some route to `origin`.
  std::optional<std::pair<topo::LinkId, topo::InterconnectId>>
  multihomed_link_on_route(AsIndex origin) {
    Ipv4 target = Ipv4(topo::as_block(origin).network().value() + 1);
    for (AsIndex src = 0; src < topology_.as_count(); ++src) {
      ForwardPath path = cp_->resolver().resolve(
          src, topology_.as_at(src).pops.front(), target, 7);
      for (const BorderCrossing& c : path.crossings) {
        topo::LinkId link = topology_.interconnect_at(c.interconnect).link;
        if (topology_.link_interconnects(link).size() >= 2) {
          return std::pair{link, c.interconnect};
        }
      }
    }
    return std::nullopt;
  }
  Topology topology_;
  std::unique_ptr<ControlPlane> cp_;
};

TEST_F(EventFixture, AdjacencyFailureReroutesAndRecoveryRestores) {
  AsIndex origin = 1;
  cp_->warm_origin(origin);
  auto target = multihomed_link_on_route(origin);
  ASSERT_TRUE(target.has_value());
  const RouteTable before = cp_->table_for(origin);

  Event down;
  down.kind = EventKind::kAdjacencyDown;
  down.link = target->first;
  ControlPlane::Impact impact = cp_->apply(down);
  // Something must have changed for this origin... if the link carried it.
  const topo::AsLink& link = topology_.link_at(target->first);
  bool endpoint_route_used_link =
      before.at(link.a).via_link == target->first ||
      before.at(link.b).via_link == target->first;
  (void)endpoint_route_used_link;

  // No route may still use the disabled adjacency.
  const RouteTable& during = cp_->table_for(origin);
  for (const Route& route : during.routes) {
    EXPECT_NE(route.via_link, target->first);
  }

  Event up;
  up.kind = EventKind::kAdjacencyUp;
  up.link = target->first;
  cp_->apply(up);
  const RouteTable& after = cp_->table_for(origin);
  for (std::size_t i = 0; i < after.routes.size(); ++i) {
    EXPECT_EQ(after.routes[i].path, before.routes[i].path)
        << "route of AS index " << i << " did not revert";
  }
  (void)impact;
}

TEST_F(EventFixture, InterconnectDownMovesCrossingNotAsPath) {
  AsIndex origin = 1;
  cp_->warm_origin(origin);
  auto target = multihomed_link_on_route(origin);
  ASSERT_TRUE(target.has_value());
  Ipv4 dst = Ipv4(topo::as_block(origin).network().value() + 1);

  // Find a source whose path uses the target interconnect.
  AsIndex src = topo::kNoAs;
  ForwardPath before;
  for (AsIndex candidate = 0; candidate < topology_.as_count(); ++candidate) {
    ForwardPath path = cp_->resolver().resolve(
        candidate, topology_.as_at(candidate).pops.front(), dst, 7);
    for (const BorderCrossing& c : path.crossings) {
      if (c.interconnect == target->second) {
        src = candidate;
        before = path;
        break;
      }
    }
    if (src != topo::kNoAs) break;
  }
  ASSERT_NE(src, topo::kNoAs);

  Event down;
  down.kind = EventKind::kInterconnectDown;
  down.link = target->first;
  down.interconnect = target->second;
  ControlPlane::Impact impact = cp_->apply(down);
  EXPECT_EQ(impact.touched_links.size(), 1u);

  ForwardPath after = cp_->resolver().resolve(
      src, topology_.as_at(src).pops.front(), dst, 7);
  EXPECT_EQ(after.as_path, before.as_path);  // border-level only
  EXPECT_FALSE(after.same_border_path(before));
  for (const BorderCrossing& c : after.crossings) {
    EXPECT_NE(c.interconnect, target->second);
  }
}

TEST_F(EventFixture, TeCommunityShowsUpInAttributes) {
  AsIndex origin = 2;
  cp_->warm_origin(origin);
  // Take any AS on some VP's path.
  RouteAttributes before = cp_->attributes(10, origin);
  ASSERT_TRUE(before.reachable());
  AsIndex middle = topology_.index_of(before.path[before.path.size() / 2]);

  Event te;
  te.kind = EventKind::kTeCommunitySet;
  te.as = middle;
  te.origin = origin;
  te.value = 3;
  ControlPlane::Impact impact = cp_->apply(te);
  ASSERT_EQ(impact.te_changes.size(), 1u);

  RouteAttributes after = cp_->attributes(10, origin);
  EXPECT_EQ(after.path, before.path);
  Community expected(topology_.as_at(middle).asn,
                     static_cast<std::uint16_t>(topo::kTeCommunityBase + 3));
  // Visible unless some AS between `middle` and the VP strips.
  bool stripped = false;
  for (Asn asn : before.path) {
    if (asn == topology_.as_at(middle).asn) break;
    if (topology_.as_at(topology_.index_of(asn)).strips_communities) {
      stripped = true;
    }
  }
  EXPECT_EQ(after.communities.contains(expected), !stripped);
}

TEST_F(EventFixture, PreferredLinkShiftChangesOnlyThatOrigin) {
  AsIndex origin_a = 1, origin_b = 2;
  cp_->warm_origin(origin_a);
  cp_->warm_origin(origin_b);
  // Pick a viewer with two providers.
  AsIndex viewer = topo::kNoAs;
  topo::LinkId alt = topo::kNoLink;
  for (AsIndex as = 0; as < topology_.as_count(); ++as) {
    const Route& route = cp_->table_for(origin_a).at(as);
    if (!route.reachable()) continue;
    for (const topo::Neighbor& nb : topology_.neighbors(as)) {
      if (nb.link != route.via_link &&
          nb.kind == topo::NeighborKind::kProvider) {
        viewer = as;
        alt = nb.link;
        break;
      }
    }
    if (viewer != topo::kNoAs) break;
  }
  ASSERT_NE(viewer, topo::kNoAs);

  const RouteTable before_b = cp_->table_for(origin_b);
  Event shift;
  shift.kind = EventKind::kPreferredLinkSet;
  shift.as = viewer;
  shift.origin = origin_a;
  shift.link = alt;
  ControlPlane::Impact impact = cp_->apply(shift);
  for (const auto& [as, origin] : impact.as_route_changes) {
    EXPECT_EQ(origin, origin_a);
  }
  const RouteTable& after_b = cp_->table_for(origin_b);
  for (std::size_t i = 0; i < after_b.routes.size(); ++i) {
    EXPECT_EQ(after_b.routes[i].path, before_b.routes[i].path);
  }
}

}  // namespace
}  // namespace rrr::routing
