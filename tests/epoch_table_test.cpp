// bgp::EpochTableView: the double-buffered epoch table behind the pipelined
// absorb (DESIGN.md §10). Covers the flip-visibility protocol, convergence
// of the shadow with a serially-applied VpTableView, the carryover replay
// that keeps the shadow one batch behind at steady state, a reader/writer
// stress test that TSAN checks for races, and the checkpoint round-trip —
// including a snapshot taken mid-carryover, where the shadow is one batch
// behind the published epoch (DESIGN.md §11). Also the cut_window_prefix
// regression: closing a window must leave out-of-order future-window
// records dispatched in exactly the order the old whole-buffer stable sort
// produced.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "bgp/epoch_table.h"
#include "signals/engine.h"
#include "store/serial.h"

namespace rrr::bgp {
namespace {

BgpRecord announce(VpId vp, const char* prefix, AsPath path,
                   std::int64_t t = 0) {
  BgpRecord record;
  record.time = TimePoint(t);
  record.type = RecordType::kAnnouncement;
  record.vp = vp;
  record.prefix = *Prefix::parse(prefix);
  record.as_path = std::move(path);
  return record;
}

BgpRecord withdraw(VpId vp, const char* prefix, std::int64_t t = 0) {
  BgpRecord record;
  record.time = TimePoint(t);
  record.type = RecordType::kWithdrawal;
  record.vp = vp;
  record.prefix = *Prefix::parse(prefix);
  return record;
}

Ipv4 ip(const char* s) { return *Ipv4::parse(s); }

TEST(EpochTableView, AbsorbInvisibleUntilFlip) {
  EpochTableView table;
  std::vector<BgpRecord> batch{announce(1, "10.0.0.0/16", {Asn(1), Asn(2)})};

  EXPECT_EQ(table.absorb(batch, batch.size()), 1u);
  // The batch went into the shadow; the published epoch is untouched.
  EXPECT_EQ(table.route(1, ip("10.0.0.1")), nullptr);
  EXPECT_EQ(table.epoch(), 0u);

  table.flip();
  ASSERT_NE(table.route(1, ip("10.0.0.1")), nullptr);
  EXPECT_EQ(table.route(1, ip("10.0.0.1"))->path, (AsPath{Asn(1), Asn(2)}));
  EXPECT_EQ(table.epoch(), 1u);
}

TEST(EpochTableView, PublishedReferenceIsStableAcrossAbsorb) {
  EpochTableView table;
  const VpTableView& epoch0 = table.read();
  std::vector<BgpRecord> batch{announce(1, "10.0.0.0/16", {Asn(1)})};
  table.absorb(batch, batch.size());
  // Same object until the flip; the absorb only touched the shadow.
  EXPECT_EQ(&table.read(), &epoch0);
  table.flip();
  EXPECT_NE(&table.read(), &epoch0);
}

// After every flip the published buffer must equal a VpTableView that had
// the same batches applied serially — announcements, replacements, and
// withdrawals alike — even though each absorb also replays the previous
// batch into the other buffer.
TEST(EpochTableView, ConvergesWithSerialApplyAll) {
  EpochTableView table;
  VpTableView serial;

  std::vector<std::vector<BgpRecord>> windows = {
      {announce(1, "10.0.0.0/16", {Asn(1), Asn(2)}),
       announce(2, "10.0.0.0/16", {Asn(3), Asn(2)})},
      {announce(1, "10.0.0.0/16", {Asn(1), Asn(4)}),  // replacement
       announce(2, "20.0.0.0/16", {Asn(3), Asn(5)})},
      {withdraw(2, "10.0.0.0/16"),
       announce(3, "10.0.0.0/24", {Asn(6)})},  // more-specific prefix
      {},                                      // empty window still flips
      {announce(1, "30.0.0.0/16", {Asn(7)})},
  };

  std::uint64_t flips = 0;
  for (const auto& batch : windows) {
    table.absorb(batch, batch.size());
    table.flip();
    ++flips;
    serial.apply_all(batch, batch.size());
    for (VpId vp : {VpId(1), VpId(2), VpId(3)}) {
      EXPECT_EQ(serial.route_count(vp), table.route_count(vp))
          << "after flip " << flips << " vp " << vp;
      for (const char* probe_ip :
           {"10.0.0.1", "10.0.1.1", "20.0.0.1", "30.0.0.1"}) {
        const VpRoute* want = serial.route(vp, ip(probe_ip));
        const VpRoute* got = table.route(vp, ip(probe_ip));
        ASSERT_EQ(want == nullptr, got == nullptr)
            << "after flip " << flips << " vp " << vp << " ip " << probe_ip;
        if (want != nullptr) {
          EXPECT_EQ(want->path, got->path);
          EXPECT_EQ(want->communities, got->communities);
        }
      }
    }
  }
  EXPECT_EQ(table.epoch(), flips);
}

// The shadow is one batch behind between a flip and the next absorb; the
// carryover replay must close that gap before the new batch lands, so a
// record absorbed two windows ago is still present after two more flips
// (it lives in whichever buffer is published *and* in the shadow).
TEST(EpochTableView, CarryoverReplaysPreviousBatchIntoNewShadow) {
  EpochTableView table;
  std::vector<BgpRecord> w0{announce(1, "10.0.0.0/16", {Asn(1)})};
  std::vector<BgpRecord> w1{announce(1, "20.0.0.0/16", {Asn(2)})};
  std::vector<BgpRecord> w2{announce(1, "30.0.0.0/16", {Asn(3)})};

  table.absorb(w0, w0.size());
  table.flip();
  table.absorb(w1, w1.size());
  table.flip();
  // Published now holds w0+w1. Absorb w2: the shadow (which last published
  // w0 only) must first replay w1, or w1 would vanish at the next flip.
  table.absorb(w2, w2.size());
  table.flip();
  EXPECT_NE(table.route(1, ip("10.0.0.1")), nullptr);
  EXPECT_NE(table.route(1, ip("20.0.0.1")), nullptr);
  EXPECT_NE(table.route(1, ip("30.0.0.1")), nullptr);
}

// Checkpoint round-trip taken mid-carryover: the table is saved right
// after a flip, when the shadow is still one batch behind and the
// carryover has not been replayed yet. The restored table starts with both
// buffers equal and an empty carryover — behaviourally the same point,
// which this test pins by running both tables forward through two more
// absorb/flip rounds and comparing every lookup (and the epoch counter)
// after each flip.
TEST(EpochTableView, CheckpointMidCarryoverResumesLikeFreshRun) {
  EpochTableView table;
  std::vector<BgpRecord> w0{announce(1, "10.0.0.0/16", {Asn(1)}),
                           announce(2, "40.0.0.0/16", {Asn(9)})};
  std::vector<BgpRecord> w1{announce(1, "20.0.0.0/16", {Asn(2)}),
                           withdraw(2, "40.0.0.0/16")};
  table.absorb(w0, w0.size());
  table.flip();
  table.absorb(w1, w1.size());
  table.flip();
  // Mid-carryover: w1 is published but not yet replayed into the shadow.

  store::Encoder enc;
  table.save_state(enc);
  EpochTableView restored;
  store::Decoder dec(enc.buffer());
  restored.load_state(dec);
  dec.expect_done();
  EXPECT_EQ(restored.epoch(), table.epoch());

  std::vector<std::vector<BgpRecord>> rounds = {
      {announce(1, "30.0.0.0/16", {Asn(3)}),
       announce(2, "40.0.0.0/16", {Asn(10)})},  // re-announce the withdrawn
      {withdraw(1, "20.0.0.0/16")},
  };
  for (const auto& batch : rounds) {
    table.absorb(batch, batch.size());
    table.flip();
    restored.absorb(batch, batch.size());
    restored.flip();
    EXPECT_EQ(restored.epoch(), table.epoch());
    for (VpId vp : {VpId(1), VpId(2)}) {
      EXPECT_EQ(restored.route_count(vp), table.route_count(vp)) << vp;
      for (const char* probe_ip :
           {"10.0.0.1", "20.0.0.1", "30.0.0.1", "40.0.0.1"}) {
        const VpRoute* want = table.route(vp, ip(probe_ip));
        const VpRoute* got = restored.route(vp, ip(probe_ip));
        ASSERT_EQ(want == nullptr, got == nullptr)
            << "vp " << vp << " ip " << probe_ip;
        if (want != nullptr) {
          EXPECT_EQ(want->path, got->path);
          EXPECT_EQ(want->communities, got->communities);
        }
      }
    }
  }
  // And a restore is lossless: saving the restored table at the same point
  // as the original yields identical bytes.
  store::Encoder ea, eb;
  table.save_state(ea);
  restored.save_state(eb);
  EXPECT_EQ(ea.buffer(), eb.buffer());
}

// apply() is the serial convenience used by tests and bootstrap code: the
// record must be immediately visible and must survive any later flip (it
// goes into both buffers).
TEST(EpochTableView, ApplyIsImmediatelyVisibleAndFlipProof) {
  EpochTableView table;
  table.apply(announce(1, "10.0.0.0/16", {Asn(1)}));
  ASSERT_NE(table.route(1, ip("10.0.0.1")), nullptr);
  std::vector<BgpRecord> none;
  table.absorb(none, 0);
  table.flip();
  EXPECT_NE(table.route(1, ip("10.0.0.1")), nullptr);
}

// Readers on several threads race one absorb writer, exactly like shard
// closes racing the absorb task. TSAN (ctest -L tsan) checks the buffer
// disjointness claim; the asserts check that readers only ever see the
// published start-of-window epoch, however far the writer has progressed.
TEST(EpochTableView, ConcurrentReadersNeverSeeTheShadow) {
  EpochTableView table;
  // Publish a known epoch first.
  std::vector<BgpRecord> base;
  for (int i = 0; i < 64; ++i) {
    base.push_back(announce(1, ("10." + std::to_string(i) + ".0.0/16").c_str(),
                            {Asn(100), Asn(200)}));
  }
  table.absorb(base, base.size());
  table.flip();

  // The next window rewrites every route; none of it may be visible while
  // the writer runs.
  std::vector<BgpRecord> next;
  for (int i = 0; i < 64; ++i) {
    next.push_back(announce(1, ("10." + std::to_string(i) + ".0.0/16").c_str(),
                            {Asn(300)}));
  }

  std::atomic<bool> writer_done{false};
  std::atomic<int> torn_reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!writer_done.load(std::memory_order_acquire)) {
        for (int i = 0; i < 64; ++i) {
          const VpRoute* route =
              table.route(1, ip(("10." + std::to_string(i) + ".0.1").c_str()));
          if (route == nullptr ||
              route->path != AsPath{Asn(100), Asn(200)}) {
            torn_reads.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  std::thread writer([&] {
    table.absorb(next, next.size());
    writer_done.store(true, std::memory_order_release);
  });
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(torn_reads.load(), 0);

  // Join-then-flip makes the new epoch visible.
  table.flip();
  const VpRoute* route = table.route(1, ip("10.3.0.1"));
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->path, AsPath{Asn(300)});
}

}  // namespace
}  // namespace rrr::bgp

namespace rrr::signals {
namespace {

bgp::BgpRecord timed_record(std::int64_t t, Asn origin) {
  bgp::BgpRecord record;
  record.time = TimePoint(t);
  record.type = bgp::RecordType::kAnnouncement;
  record.vp = 1;
  record.prefix = *Prefix::parse("10.0.0.0/16");
  record.as_path = {Asn(1), origin};
  return record;
}

std::vector<Asn> origins(const std::vector<bgp::BgpRecord>& records,
                         std::size_t count) {
  std::vector<Asn> out;
  for (std::size_t i = 0; i < count; ++i) out.push_back(records[i].as_path[1]);
  return out;
}

// Regression for the per-close backlog sort: out-of-order input spanning
// several future windows must yield, window by window, exactly the prefix
// order the old whole-buffer stable sort produced — in-window records by
// (time, arrival order) — while later-window records stay buffered in
// arrival order until their own close.
TEST(CutWindowPrefix, OutOfOrderMultiWindowInput) {
  WindowClock clock(TimePoint(0), 100);
  // Arrival order deliberately scrambled across three windows, with
  // equal-time records (t=40) to pin the stable tie-break.
  std::vector<bgp::BgpRecord> pending = {
      timed_record(250, Asn(900)),  // window 2
      timed_record(40, Asn(901)),   // window 0, tie A (arrives first)
      timed_record(130, Asn(902)),  // window 1
      timed_record(40, Asn(903)),   // window 0, tie B
      timed_record(10, Asn(904)),   // window 0
      timed_record(260, Asn(905)),  // window 2
      timed_record(110, Asn(906)),  // window 1
  };

  // Reference: what the old implementation dispatched for each close.
  auto reference = pending;
  std::stable_sort(reference.begin(), reference.end(),
                   [](const bgp::BgpRecord& a, const bgp::BgpRecord& b) {
                     return a.time < b.time;
                   });

  std::size_t cut0 = cut_window_prefix(pending, clock, 0);
  ASSERT_EQ(cut0, 3u);
  EXPECT_EQ(origins(pending, cut0), origins(reference, 3));
  EXPECT_EQ(origins(pending, cut0),
            (std::vector<Asn>{Asn(904), Asn(901), Asn(903)}));
  pending.erase(pending.begin(),
                pending.begin() + static_cast<std::ptrdiff_t>(cut0));

  std::size_t cut1 = cut_window_prefix(pending, clock, 1);
  ASSERT_EQ(cut1, 2u);
  EXPECT_EQ(origins(pending, cut1), (std::vector<Asn>{Asn(906), Asn(902)}));
  pending.erase(pending.begin(),
                pending.begin() + static_cast<std::ptrdiff_t>(cut1));

  std::size_t cut2 = cut_window_prefix(pending, clock, 2);
  ASSERT_EQ(cut2, 2u);
  EXPECT_EQ(origins(pending, cut2), (std::vector<Asn>{Asn(900), Asn(905)}));
}

// An empty close (no in-window records) must not disturb the backlog.
TEST(CutWindowPrefix, EmptyWindowLeavesBacklogUntouched) {
  WindowClock clock(TimePoint(0), 100);
  std::vector<bgp::BgpRecord> pending = {
      timed_record(250, Asn(900)),
      timed_record(130, Asn(901)),
  };
  EXPECT_EQ(cut_window_prefix(pending, clock, 0), 0u);
  EXPECT_EQ(origins(pending, pending.size()),
            (std::vector<Asn>{Asn(900), Asn(901)}));
}

}  // namespace
}  // namespace rrr::signals
