// End-to-end determinism of the staleness engine's parallel window closing:
// the signal stream, stale-pair set, and calibration state must be
// bit-identical at any engine (shards, threads, pipeline) combination (the
// determinism contract, DESIGN.md "Runtime & determinism", "Sharded
// engine", and §10 "Epoch pipeline"), and two serial runs must be
// byte-identical through the io/serialize text formats.
#include <gtest/gtest.h>

#include <sstream>
#include <tuple>
#include <vector>

#include "eval/world.h"
#include "io/serialize.h"
#include "netbase/intern.h"
#include "store/serial.h"

namespace rrr::eval {
namespace {

WorldParams small_params(std::uint64_t seed, int engine_threads,
                         int engine_shards = 1, bool pipeline = true) {
  WorldParams params;
  params.days = 3;
  params.warmup_days = 1;
  params.corpus_pair_target = 150;
  params.corpus_dest_count = 10;
  params.public_dest_count = 40;
  params.public_traces_per_window = 120;
  params.platform.num_probes = 160;
  params.topology.num_transit = 24;
  params.topology.num_stub = 80;
  params.seed = seed;
  params.engine_threads = engine_threads;
  params.engine_shards = engine_shards;
  params.pipeline_absorb = pipeline;
  // Telemetry on, so every run also carries a semantic-counter snapshot:
  // the obs::Domain::kSemantic metrics (signals emitted, potentials opened,
  // refreshes graded, ...) are part of the determinism contract, unlike the
  // kRuntime timing histograms which differ run to run by design.
  params.telemetry = true;
  // Flight recorder on across the whole grid: tracing is kRuntime-only
  // (clock reads and private buffers, no RNG or engine state), so every
  // byte-identity assertion below also proves recording never perturbs
  // the semantic outputs (DESIGN.md §13).
  params.trace = true;
  return params;
}

// Everything about a signal that identifies it across runs.
using SignalKey = std::tuple<std::int64_t, tr::ProbeId, std::uint32_t,
                             int, signals::PotentialId, std::size_t,
                             std::int64_t>;

struct RunTrace {
  std::vector<SignalKey> signals;
  std::vector<tr::PairKey> stale;
  std::uint64_t calibration_digest = 0;
  std::string corpus_bytes;  // io/serialize rendering of the final corpus
  std::string semantic_stats;  // JSON of the semantic-domain metrics
  std::int64_t fault_records_affected = 0;
  // Full id→content dump of the run's intern tables (save_state bytes:
  // content in id order). Byte equality means the id *assignment order* —
  // not just the value set — was identical, which is the serial-insert
  // discipline the interner relies on (netbase/intern.h).
  std::string interner_dict;
};

// The fault plan of the degraded-grid test: every clause active at once, so
// the grid comparison covers blackout membership, session-reset replay,
// loss, duplication, reordering, and corruption in one run.
fault::FaultPlan grid_fault_plan() {
  fault::FaultPlan plan;
  plan.collector_blackout_fraction = 0.4;
  plan.blackout_start_window = 120;
  plan.blackout_windows = 48;
  plan.session_reset_replay = true;
  plan.drop_rate = 0.05;
  plan.duplicate_rate = 0.1;
  plan.reorder_rate = 0.1;
  plan.reorder_max_seconds = 120;
  plan.corrupt_rate = 0.02;
  plan.seed = 99;
  return plan;
}

RunTrace run_world(std::uint64_t seed, int engine_threads,
                   int engine_shards = 1, bool faulted = false,
                   bool pipeline = true) {
  WorldParams params =
      small_params(seed, engine_threads, engine_shards, pipeline);
  if (faulted) {
    params.fault_plan = grid_fault_plan();
    params.feed_health.enabled = true;
  }
  // Fresh intern tables per grid point, so the dictionary dump compares id
  // assignment from a clean slate (the process-global instance would carry
  // ids interned by earlier tests).
  Interner::ScopedInstance interner;
  World world(params);
  RunTrace trace;
  World::Hooks hooks;
  hooks.on_signals = [&](std::int64_t window, TimePoint,
                         std::vector<signals::StalenessSignal>&& sigs) {
    for (const signals::StalenessSignal& s : sigs) {
      trace.signals.emplace_back(window, s.pair.probe, s.pair.dst.value(),
                                 static_cast<int>(s.technique), s.potential,
                                 s.border_index, s.time.seconds());
    }
  };
  world.run_until(world.corpus_t0(), hooks);
  world.initialize_corpus();
  world.run_until(world.end(), hooks);

  trace.stale = world.engine().stale_pairs();
  trace.calibration_digest = world.engine().calibration().digest();
  trace.semantic_stats = world.semantic_stats_json();
  if (world.fault_injector() != nullptr) {
    const fault::FaultInjector::Stats& stats =
        world.fault_injector()->stats();
    trace.fault_records_affected =
        stats.bgp_blackout_dropped + stats.bgp_dropped +
        stats.bgp_corrupted + stats.bgp_corrupt_dropped +
        stats.bgp_duplicated + stats.bgp_replayed + stats.trace_dropped +
        stats.trace_blackout_dropped;
  }

  // Render the final corpus view through the text serializer so the
  // byte-identity check covers every field the formats carry.
  std::ostringstream corpus;
  std::vector<tr::Traceroute> finals;
  for (const tr::PairKey& pair : world.ground_truth().pairs()) {
    finals.push_back(world.issue_corpus_traceroute(pair, world.end()));
  }
  io::write_traceroutes(corpus, finals);
  trace.corpus_bytes = corpus.str();

  store::Encoder dict;
  interner.get().save_state(dict);
  trace.interner_dict = dict.buffer();
  return trace;
}

TEST(Determinism, SignalStreamIdenticalAcrossThreadCounts) {
  RunTrace serial = run_world(11, 1);
  RunTrace parallel = run_world(11, 4);
  ASSERT_GT(serial.signals.size(), 0u)
      << "world too quiet to exercise the engine";
  EXPECT_EQ(serial.signals, parallel.signals);
}

TEST(Determinism, StalePairsAndCalibrationIdenticalAcrossThreadCounts) {
  RunTrace serial = run_world(12, 1);
  RunTrace parallel = run_world(12, 4);
  EXPECT_EQ(serial.stale, parallel.stale);
  EXPECT_EQ(serial.calibration_digest, parallel.calibration_digest);
}

TEST(Determinism, SerialRunsAreByteIdentical) {
  RunTrace a = run_world(13, 1);
  RunTrace b = run_world(13, 1);
  EXPECT_EQ(a.signals, b.signals);
  EXPECT_EQ(a.stale, b.stale);
  EXPECT_EQ(a.calibration_digest, b.calibration_digest);
  ASSERT_FALSE(a.corpus_bytes.empty());
  EXPECT_EQ(a.corpus_bytes, b.corpus_bytes);
}

TEST(Determinism, ParallelRunMatchesSerialBytes) {
  RunTrace serial = run_world(14, 1);
  RunTrace parallel = run_world(14, 4);
  EXPECT_EQ(serial.corpus_bytes, parallel.corpus_bytes);
}

// The tentpole contract: partitioning the corpus over shards must not
// change a single byte of the output, whatever thread count runs the
// shards and whether or not the epoch-table absorb is pipelined. Every
// (shards, threads, pipeline) grid point is compared against the serial
// single-shard run with the pipeline off — the exact pre-epoch schedule.
TEST(Determinism, ShardGridMatchesSingleShardSerial) {
  RunTrace baseline = run_world(15, 1, 1, /*faulted=*/false,
                                /*pipeline=*/false);
  ASSERT_GT(baseline.signals.size(), 0u)
      << "world too quiet to exercise the engine";
  for (int shards : {1, 2, 4}) {
    for (int threads : {1, 4}) {
      for (bool pipeline : {false, true}) {
        if (shards == 1 && threads == 1 && !pipeline) continue;
        RunTrace run =
            run_world(15, threads, shards, /*faulted=*/false, pipeline);
        auto point = [&] {
          std::ostringstream os;
          os << "shards=" << shards << " threads=" << threads
             << " pipeline=" << pipeline;
          return os.str();
        }();
        EXPECT_EQ(baseline.signals, run.signals) << point;
        EXPECT_EQ(baseline.stale, run.stale) << point;
        EXPECT_EQ(baseline.calibration_digest, run.calibration_digest)
            << point;
        EXPECT_EQ(baseline.corpus_bytes, run.corpus_bytes) << point;
        // The semantic telemetry snapshot is part of the same contract: the
        // counters describe the signal stream, so their JSON rendering must
        // be byte-identical at every grid point (pipeline-only differences
        // like absorb-wait spans live in the runtime domain).
        EXPECT_EQ(baseline.semantic_stats, run.semantic_stats) << point;
        // So is the intern dictionary: byte-identical dumps mean every grid
        // point assigned every path/commset/collector id in the same order,
        // i.e. all interner inserts really are confined to serial code.
        EXPECT_EQ(baseline.interner_dict, run.interner_dict) << point;
      }
    }
  }
  EXPECT_NE(baseline.semantic_stats.find("rrr_signals_emitted_total"),
            std::string::npos)
      << "semantic snapshot missing the emitted-signal counters";
  // The dictionary comparison must not be vacuous: the run interned real
  // feed content beyond the three built-in empty values.
  Interner::ScopedInstance decoded;
  store::Decoder dict(baseline.interner_dict);
  decoded.get().load_state(dict);
  EXPECT_GT(decoded.get().path_count(), 1u);
  EXPECT_GT(decoded.get().collector_count(), 1u);
}

// The degraded half of the contract: a fault plan plus feed-health gating
// must be exactly as deterministic as the clean path. The injector draws
// from per-stream generators on the facade's serial feed path and the
// health tracker transitions in the serial close, so every (shards,
// threads) grid point must reproduce the serial faulted run byte for byte —
// signal stream, stale pairs, calibration, corpus bytes, and the semantic
// telemetry (which now includes the rrr_fault_* and rrr_feed_* series).
TEST(Determinism, FaultedGridMatchesSingleShardSerial) {
  RunTrace baseline = run_world(16, 1, 1, /*faulted=*/true,
                                /*pipeline=*/false);
  ASSERT_GT(baseline.fault_records_affected, 0)
      << "fault plan never fired; the grid comparison would be vacuous";
  ASSERT_GT(baseline.signals.size(), 0u)
      << "world too quiet to exercise the engine";
  for (int shards : {1, 2, 4}) {
    for (int threads : {1, 4}) {
      for (bool pipeline : {false, true}) {
        if (shards == 1 && threads == 1 && !pipeline) continue;
        RunTrace run =
            run_world(16, threads, shards, /*faulted=*/true, pipeline);
        auto point = [&] {
          std::ostringstream os;
          os << "shards=" << shards << " threads=" << threads
             << " pipeline=" << pipeline;
          return os.str();
        }();
        EXPECT_EQ(baseline.signals, run.signals) << point;
        EXPECT_EQ(baseline.stale, run.stale) << point;
        EXPECT_EQ(baseline.calibration_digest, run.calibration_digest)
            << point;
        EXPECT_EQ(baseline.corpus_bytes, run.corpus_bytes) << point;
        EXPECT_EQ(baseline.semantic_stats, run.semantic_stats) << point;
        EXPECT_EQ(baseline.interner_dict, run.interner_dict) << point;
        EXPECT_EQ(baseline.fault_records_affected,
                  run.fault_records_affected)
            << point;
      }
    }
  }
  EXPECT_NE(baseline.semantic_stats.find("rrr_fault_bgp_records"),
            std::string::npos)
      << "semantic snapshot missing the fault-injection counters";
  EXPECT_NE(baseline.semantic_stats.find("rrr_feed_streams"),
            std::string::npos)
      << "semantic snapshot missing the feed-health gauges";
}

}  // namespace
}  // namespace rrr::eval
