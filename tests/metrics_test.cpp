// Tests for the evaluation metrics: signal/change matching, Table 2
// aggregation, daily series, and the CDF helper.
#include <gtest/gtest.h>

#include "eval/metrics.h"

namespace rrr::eval {
namespace {

signals::StalenessSignal make_signal(signals::Technique technique,
                                     tr::ProbeId probe, std::int64_t t,
                                     std::int64_t span = kBaseWindowSeconds) {
  signals::StalenessSignal s;
  s.technique = technique;
  s.pair = tr::PairKey{probe, *Ipv4::parse("10.0.0.1")};
  s.time = TimePoint(t);
  s.span_seconds = span;
  s.border_index = 0;
  return s;
}

ChangeEvent make_change(tr::ProbeId probe, std::int64_t t,
                        ChangeKind kind = ChangeKind::kBorderLevel) {
  ChangeEvent c;
  c.pair = tr::PairKey{probe, *Ipv4::parse("10.0.0.1")};
  c.time = TimePoint(t);
  c.kind = kind;
  return c;
}

TEST(SignalMatcher, MatchesWithinWindowSpanAndTolerance) {
  std::vector<signals::StalenessSignal> signals = {
      make_signal(signals::Technique::kBgpAsPath, 1, 10000),
  };
  // Inside [t - span - tol - grace, t + tol].
  std::vector<ChangeEvent> hit = {make_change(1, 9500)};
  MatchParams params;
  params.forward_grace_seconds = 0;
  SignalMatcher m1(signals, hit, params);
  EXPECT_TRUE(m1.signal_matched(0));

  std::vector<ChangeEvent> too_late = {make_change(1, 10000 + 2000)};
  SignalMatcher m2(signals, too_late, params);
  EXPECT_FALSE(m2.signal_matched(0));

  std::vector<ChangeEvent> wrong_pair = {make_change(2, 9500)};
  SignalMatcher m3(signals, wrong_pair, params);
  EXPECT_FALSE(m3.signal_matched(0));
}

TEST(SignalMatcher, ForwardGraceCreditsLateSignals) {
  std::vector<signals::StalenessSignal> signals = {
      make_signal(signals::Technique::kTraceSubpath, 1, 30000, 900),
  };
  std::vector<ChangeEvent> change = {make_change(1, 20000)};
  MatchParams strict;
  strict.forward_grace_seconds = 0;
  EXPECT_FALSE(SignalMatcher(signals, change, strict).signal_matched(0));
  MatchParams graced;
  graced.forward_grace_seconds = 4 * kSecondsPerHour;
  EXPECT_TRUE(SignalMatcher(signals, change, graced).signal_matched(0));
}

TEST(SignalMatcher, Table2CountsUniqueCoverage) {
  // Change A covered by two techniques; change B only by subpaths.
  std::vector<signals::StalenessSignal> signals = {
      make_signal(signals::Technique::kBgpAsPath, 1, 1000),
      make_signal(signals::Technique::kTraceSubpath, 1, 1200),
      make_signal(signals::Technique::kTraceSubpath, 2, 5000),
  };
  std::vector<ChangeEvent> changes = {
      make_change(1, 900, ChangeKind::kAsLevel),
      make_change(2, 4900, ChangeKind::kBorderLevel),
  };
  SignalMatcher matcher(signals, changes);
  Table2Result table = matcher.table2();
  EXPECT_EQ(table.total_changes, 2);
  EXPECT_EQ(table.as_changes, 1);
  EXPECT_EQ(table.border_changes, 1);

  const TechniqueRow& subpaths =
      table.techniques[static_cast<int>(signals::Technique::kTraceSubpath)];
  EXPECT_NEAR(subpaths.cov_all, 1.0, 1e-9);        // covered both
  EXPECT_NEAR(subpaths.cov_all_unique, 0.5, 1e-9); // alone only on B
  const TechniqueRow& aspath =
      table.techniques[static_cast<int>(signals::Technique::kBgpAsPath)];
  EXPECT_NEAR(aspath.cov_all, 0.5, 1e-9);
  EXPECT_NEAR(aspath.cov_all_unique, 0.0, 1e-9);
  EXPECT_NEAR(table.all.cov_all, 1.0, 1e-9);
  EXPECT_NEAR(table.all.precision, 1.0, 1e-9);
}

TEST(SignalMatcher, DailySeriesBucketsByDay) {
  std::vector<signals::StalenessSignal> signals = {
      make_signal(signals::Technique::kTraceSubpath, 1, kSecondsPerDay + 600),
  };
  std::vector<ChangeEvent> changes = {
      make_change(1, kSecondsPerDay + 300),
      make_change(2, 2 * kSecondsPerDay + 100),  // uncovered, day 2
  };
  SignalMatcher matcher(signals, changes);
  auto daily = matcher.daily_series(TimePoint(0), 3);
  ASSERT_EQ(daily.size(), 3u);
  EXPECT_EQ(daily[1].signals, 1);
  EXPECT_NEAR(daily[1].coverage_border, 1.0, 1e-9);
  EXPECT_NEAR(daily[2].coverage_border, 0.0, 1e-9);
  EXPECT_EQ(daily[0].signals, 0);
}

TEST(Cdf, QuantilesAndFractions) {
  Cdf cdf;
  for (int i = 1; i <= 100; ++i) cdf.add(i);
  EXPECT_NEAR(cdf.median(), 50.0, 1.0);
  EXPECT_NEAR(cdf.quantile(0.9), 90.0, 1.0);
  EXPECT_NEAR(cdf.fraction_at_most(25.0), 0.25, 0.01);
  EXPECT_NEAR(cdf.fraction_at_most(1000.0), 1.0, 1e-9);
  EXPECT_NEAR(cdf.fraction_at_most(0.0), 0.0, 1e-9);
  // Adding after a quantile query must keep results consistent.
  cdf.add(1000.0);
  EXPECT_NEAR(cdf.quantile(1.0), 1000.0, 1e-9);
}

}  // namespace
}  // namespace rrr::eval
