// End-to-end integration tests of the staleness engine on a quiet world
// with hand-injected routing events: every technique is exercised against a
// change whose ground truth is known exactly.
#include <gtest/gtest.h>

#include <map>

#include "eval/metrics.h"
#include "eval/world.h"

namespace rrr {
namespace {

eval::WorldParams quiet_params() {
  eval::WorldParams params;
  params.days = 6;
  params.warmup_days = 1;
  params.corpus_pair_target = 400;
  params.corpus_dest_count = 20;
  params.public_dest_count = 80;
  params.public_traces_per_window = 600;
  params.platform.num_probes = 500;
  params.topology.num_transit = 40;
  params.topology.num_stub = 150;
  params.seed = 97;
  // A perfectly quiet control plane: no scheduled events at all.
  params.dynamics = routing::DynamicsParams{};
  params.dynamics.interconnect_flap_per_day = 0;
  params.dynamics.egress_shift_per_day = 0;
  params.dynamics.adjacency_flap_per_day = 0;
  params.dynamics.preferred_link_shift_per_day = 0;
  params.dynamics.te_community_churn_per_day = 0;
  params.dynamics.parrot_update_per_day = 0;
  params.dynamics.ixp_join_per_day = 0;
  // No recalibration sweeps: freshness flags must persist for assertions.
  params.recalibration_interval_windows = 0;
  // No measurement noise: keeps ground truth sharp for the assertions.
  params.prober.silent_router_fraction = 0;
  params.prober.intermittent_loss_prob = 0;
  params.prober.unresponsive_destination_prob = 0;
  return params;
}

class QuietWorldTest : public ::testing::Test {
 protected:
  void SetUp() override {
    world_ = std::make_unique<eval::World>(quiet_params());
    hooks_.on_signals = [this](std::int64_t, TimePoint,
                               std::vector<signals::StalenessSignal>&& s) {
      for (auto& signal : s) signals_.push_back(std::move(signal));
    };
    world_->run_until(world_->corpus_t0(), hooks_);
    pairs_ = world_->initialize_corpus();
  }

  // Applies a routing event right now and routes its consequences to the
  // BGP feed and ground truth, exactly as World::process_event does.
  void inject(routing::Event event) {
    auto impact = world_->control_plane().apply(event);
    for (bgp::BgpRecord& record : world_->feed().on_event(event, impact)) {
      world_->engine().on_bgp_record(record);
    }
    world_->ground_truth().on_impact(event, impact);
  }

  // Finds a corpus pair whose true path crosses a link with at least two
  // interconnects, returning (pair, crossing) of the first such border.
  struct Target {
    tr::PairKey pair;
    routing::BorderCrossing crossing;
    topo::LinkId link;
  };
  std::optional<Target> find_multihomed_border() {
    const topo::Topology& topology = world_->topology();
    for (const tr::PairKey& pair : world_->ground_truth().pairs()) {
      const routing::ForwardPath& path = world_->ground_truth().current(pair);
      for (const routing::BorderCrossing& crossing : path.crossings) {
        topo::LinkId link =
            topology.interconnect_at(crossing.interconnect).link;
        if (topology.link_interconnects(link).size() >= 2) {
          return Target{pair, crossing, link};
        }
      }
    }
    return std::nullopt;
  }

  std::unique_ptr<eval::World> world_;
  eval::World::Hooks hooks_;
  std::vector<signals::StalenessSignal> signals_;
  std::size_t pairs_ = 0;
};

TEST_F(QuietWorldTest, QuietWorldProducesNoChangesAndFewSignals) {
  world_->run_until(world_->corpus_t0() + 3 * kSecondsPerDay, hooks_);
  EXPECT_TRUE(world_->ground_truth().changes().empty());
  // Without any routing event there is nothing to (correctly) report;
  // residual signals are sampling-noise false positives and must be rare.
  EXPECT_LE(signals_.size(), pairs_ / 20)
      << "noise signals: " << signals_.size();
}

TEST_F(QuietWorldTest, InterconnectFailureIsDetected) {
  // Let the traceroute series arm first.
  world_->run_until(world_->corpus_t0() + 2 * kSecondsPerDay, hooks_);
  auto target = find_multihomed_border();
  ASSERT_TRUE(target.has_value());

  routing::Event event;
  event.id = 9001;
  event.kind = routing::EventKind::kInterconnectDown;
  event.time = world_->corpus_t0() + 2 * kSecondsPerDay;
  event.interconnect = target->crossing.interconnect;
  event.link = target->link;
  inject(event);

  // The pair's true path must have changed (that is what we injected).
  ASSERT_FALSE(world_->ground_truth().changes().empty());

  signals_.clear();
  world_->run_until(world_->corpus_t0() + 5 * kSecondsPerDay, hooks_);

  // Some signal must implicate a pair that the event actually changed.
  std::set<tr::PairKey> changed_pairs;
  for (const auto& change : world_->ground_truth().changes()) {
    changed_pairs.insert(change.pair);
  }
  bool flagged = false;
  std::map<signals::Technique, int> by_technique;
  for (const auto& signal : signals_) {
    if (changed_pairs.contains(signal.pair)) {
      flagged = true;
      ++by_technique[signal.technique];
    }
  }
  if (!flagged) {
    std::string diag = "segments of first changed pair:";
    const tr::PairKey& first = *changed_pairs.begin();
    for (const auto& info :
         world_->engine().subpath_monitor().segments_for(first)) {
      diag += " [b#" + std::to_string(info.border_index) +
              (info.armed ? " armed" : "") +
              (info.dormant ? " dormant" : "") +
              " mult=" + std::to_string(info.multiplier) + " r=" +
              std::to_string(info.last_ratio) + "]";
    }
    ADD_FAILURE() << "no signal for any of the " << changed_pairs.size()
                  << " changed pairs (total signals " << signals_.size()
                  << "); " << diag;
  }
  // The engine must also have marked at least one changed pair stale.
  bool any_stale = false;
  for (const tr::PairKey& pair : changed_pairs) {
    if (world_->engine().freshness(pair) == tr::Freshness::kStale) {
      any_stale = true;
      break;
    }
  }
  EXPECT_TRUE(any_stale);
}

TEST_F(QuietWorldTest, SubpathMonitorSeesPersistentEgressShift) {
  world_->run_until(world_->corpus_t0() + 2 * kSecondsPerDay, hooks_);
  auto target = find_multihomed_border();
  ASSERT_TRUE(target.has_value());

  // Permanent egress-weight shift: the crossing moves and stays moved.
  routing::Event event;
  event.id = 9002;
  event.kind = routing::EventKind::kEgressWeightSet;
  event.time = world_->corpus_t0() + 2 * kSecondsPerDay;
  event.interconnect = target->crossing.interconnect;
  event.link = target->link;
  event.weight = 50000.0;
  inject(event);
  ASSERT_FALSE(world_->ground_truth().changes().empty());

  signals_.clear();
  world_->run_until(world_->corpus_t0() + 5 * kSecondsPerDay, hooks_);

  std::set<tr::PairKey> changed_pairs;
  for (const auto& change : world_->ground_truth().changes()) {
    changed_pairs.insert(change.pair);
  }
  int subpath_hits = 0;
  for (const auto& signal : signals_) {
    if (signal.technique == signals::Technique::kTraceSubpath &&
        changed_pairs.contains(signal.pair)) {
      ++subpath_hits;
    }
  }
  EXPECT_GT(subpath_hits, 0)
      << "subpath monitor missed a persistent border shift ("
      << signals_.size() << " signals total)";
}

}  // namespace
}  // namespace rrr
