// The resume-determinism contract of the durable state store (DESIGN.md
// §11): a run that checkpoints at window k and resumes must be
// indistinguishable — signal stream, stale pairs, calibration digest,
// semantic telemetry, and the io/serialize rendering of the final corpus —
// from the run that never stopped. The grid here pins that for every
// window k of a small world, across (shards x threads x pipeline x fault
// plan), through the WAL tail after a mid-cadence crash, and across
// resume-of-a-resumed-run. The rejection tables pin the other half of the
// contract: a corrupted, truncated, or version-skewed snapshot is a
// classified StoreError, never UB and never a silently wrong world.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "bgp/table_view.h"
#include "eval/world.h"
#include "io/serialize.h"
#include "netbase/intern.h"
#include "signals/feed_health.h"
#include "store/checkpoint.h"
#include "store/codec.h"
#include "store/framing.h"
#include "store/recovery.h"
#include "store/serial.h"

namespace rrr::eval {
namespace {

namespace fs = std::filesystem;

// Unique scratch directory under the gtest temp root, removed on scope
// exit. Checkpoint directories are cheap (a few MB of snapshots) but the
// grid makes many, so each case cleans up after itself.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    static std::atomic<int> counter{0};
    path_ = fs::path(::testing::TempDir()) /
            ("rrr-ckpt-" + tag + "-" + std::to_string(::getpid()) + "-" +
             std::to_string(counter.fetch_add(1)));
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// A deliberately small world: one day, no warmup, 96 base windows — small
// enough that the every-k sweep (which costs one near-full run per k) stays
// within test-suite budget, busy enough that the engine emits signals and
// the refresh cycle grades them.
WorldParams tiny_params(std::uint64_t seed, int threads = 1, int shards = 1,
                        bool pipeline = false, bool faulted = false) {
  WorldParams params;
  params.days = 1;
  params.warmup_days = 0;
  params.corpus_pair_target = 60;
  params.corpus_dest_count = 6;
  params.public_dest_count = 20;
  params.public_traces_per_window = 40;
  params.platform.num_probes = 80;
  params.topology.num_transit = 16;
  params.topology.num_stub = 50;
  // One day is short, so crank the routing dynamics: roughly a week's
  // worth of events compressed into the 96 windows, keeping the engine
  // busy enough to open potentials and emit signals.
  params.dynamics.interconnect_flap_per_day = 60.0;
  params.dynamics.interconnect_outage_mean_hours = 3.0;
  params.dynamics.egress_shift_per_day = 45.0;
  params.dynamics.egress_shift_mean_hours = 4.0;
  params.dynamics.adjacency_flap_per_day = 30.0;
  params.dynamics.adjacency_outage_mean_hours = 3.0;
  params.dynamics.preferred_link_shift_per_day = 25.0;
  params.dynamics.preferred_link_mean_hours = 6.0;
  params.dynamics.te_community_churn_per_day = 80.0;
  params.dynamics.parrot_update_per_day = 150.0;
  params.seed = seed;
  params.engine_threads = threads;
  params.engine_shards = shards;
  params.pipeline_absorb = pipeline;
  // Telemetry on: the semantic-counter snapshot is part of the resume
  // contract (restored wholesale from the snapshot, then advanced live).
  params.telemetry = true;
  if (faulted) {
    fault::FaultPlan plan;
    plan.collector_blackout_fraction = 0.4;
    plan.blackout_start_window = 30;
    plan.blackout_windows = 16;
    plan.session_reset_replay = true;
    plan.drop_rate = 0.05;
    plan.duplicate_rate = 0.1;
    plan.reorder_rate = 0.1;
    plan.reorder_max_seconds = 120;
    plan.corrupt_rate = 0.02;
    plan.seed = 99;
    params.fault_plan = plan;
    params.feed_health.enabled = true;
  }
  return params;
}

std::int64_t total_windows(const WorldParams& params) {
  return (params.days + params.warmup_days) * kSecondsPerDay /
         kBaseWindowSeconds;
}

// Everything about a signal that identifies it across runs; the leading
// element is the window index, which suffix comparison keys on.
using SignalKey = std::tuple<std::int64_t, tr::ProbeId, std::uint32_t, int,
                             signals::PotentialId, std::size_t, std::int64_t>;

struct RunTrace {
  std::int64_t resumed_at = 0;  // completed windows right after construction
  std::vector<SignalKey> signals;
  std::vector<tr::PairKey> stale;
  std::uint64_t calibration_digest = 0;
  std::string semantic_stats;
  std::string corpus_bytes;  // io/serialize rendering of the final corpus
  bool finished = false;     // false for deliberately "crashed" runs
};

std::vector<SignalKey> window_suffix(const std::vector<SignalKey>& all,
                                     std::int64_t k) {
  std::vector<SignalKey> out;
  for (const SignalKey& key : all) {
    if (std::get<0>(key) >= k) out.push_back(key);
  }
  return out;
}

struct DriveSpec {
  std::string checkpoint_dir;
  int checkpoint_every = 1;
  std::string resume_from;
  std::int64_t resume_window = -1;
  // >= 0: stop ("crash") once this many windows completed, skipping the
  // final-state capture — the world simply goes out of scope mid-run.
  std::int64_t stop_window = -1;
  // Drive the WAL-logged refresh cycle from the hooks: plan + refresh
  // inside on_signals every 7th window, one refresh inside on_day, and one
  // between-run_until refresh at mid-run (all three ReplayPoints).
  bool ops = false;
};

RunTrace drive(WorldParams params, const DriveSpec& spec) {
  params.checkpoint_dir = spec.checkpoint_dir;
  params.checkpoint_every = spec.checkpoint_every;
  params.resume_from = spec.resume_from;
  params.resume_window = spec.resume_window;
  World world(params);

  RunTrace trace;
  trace.resumed_at = spec.resume_from.empty() ? 0 : world.completed_windows();
  World::Hooks hooks;
  hooks.on_signals = [&](std::int64_t window, TimePoint window_end,
                         std::vector<signals::StalenessSignal>&& sigs) {
    for (const signals::StalenessSignal& s : sigs) {
      trace.signals.emplace_back(window, s.pair.probe, s.pair.dst.value(),
                                 static_cast<int>(s.technique), s.potential,
                                 s.border_index, s.time.seconds());
    }
    if (spec.ops && window % 7 == 3) {
      std::vector<tr::PairKey> plan = world.plan_refreshes(2);
      if (!plan.empty()) world.refresh_pair(plan.front(), window_end);
    }
  };
  hooks.on_day = [&](int, TimePoint day_end) {
    if (spec.ops && !world.ground_truth().pairs().empty()) {
      world.refresh_pair(world.ground_truth().pairs().front(), day_end);
    }
  };

  world.run_until(world.corpus_t0(), hooks);
  world.initialize_corpus();
  const std::int64_t windows = total_windows(params);
  const std::int64_t stop =
      spec.stop_window >= 0 ? spec.stop_window : windows;
  const std::int64_t mid = windows / 2;
  if (spec.ops && world.completed_windows() < mid && stop > mid) {
    // A between-run_until op (ReplayPoint::kBoundary). Skipped when the
    // resume point is already past mid: the WAL replays it instead.
    world.run_until(world.start() + mid * world.window_seconds(), hooks);
    world.refresh_pair(world.ground_truth().pairs().back(),
                       world.start() + mid * world.window_seconds());
  }
  world.run_until(world.start() + stop * world.window_seconds(), hooks);
  if (stop < windows) return trace;  // crashed mid-run, no final state

  trace.stale = world.engine().stale_pairs();
  trace.calibration_digest = world.engine().calibration().digest();
  trace.semantic_stats = world.semantic_stats_json();
  std::ostringstream corpus;
  std::vector<tr::Traceroute> finals;
  for (const tr::PairKey& pair : world.ground_truth().pairs()) {
    finals.push_back(world.issue_corpus_traceroute(pair, world.end()));
  }
  io::write_traceroutes(corpus, finals);
  trace.corpus_bytes = corpus.str();
  trace.finished = true;
  return trace;
}

void expect_same_final_state(const RunTrace& want, const RunTrace& got,
                             const std::string& label) {
  ASSERT_TRUE(want.finished && got.finished) << label;
  EXPECT_EQ(want.stale, got.stale) << label;
  EXPECT_EQ(want.calibration_digest, got.calibration_digest) << label;
  EXPECT_EQ(want.semantic_stats, got.semantic_stats) << label;
  EXPECT_EQ(want.corpus_bytes, got.corpus_bytes) << label;
}

// Resume expected to fail during World construction; returns the error.
store::StoreError resume_error(WorldParams params, const DriveSpec& spec) {
  params.checkpoint_dir = spec.checkpoint_dir;
  params.checkpoint_every = spec.checkpoint_every;
  params.resume_from = spec.resume_from;
  params.resume_window = spec.resume_window;
  try {
    World world(params);
  } catch (const store::StoreError& e) {
    return e;
  }
  ADD_FAILURE() << "resume unexpectedly succeeded";
  return store::StoreError(store::StoreError::Kind::kIo, "unreachable");
}

// --- the checkpointed run is the same run ---

// Turning checkpointing on must not perturb the run: snapshot writes and
// WAL appends are side effects, not timeline inputs.
TEST(CheckpointResume, CheckpointingIsOutputInvisible) {
  WorldParams params = tiny_params(21);
  TempDir dir("invisible");
  DriveSpec with;
  with.checkpoint_dir = dir.str();
  with.checkpoint_every = 4;
  RunTrace checkpointed = drive(params, with);
  RunTrace plain = drive(params, DriveSpec{});
  ASSERT_GT(checkpointed.signals.size(), 0u)
      << "world too quiet to exercise the engine";
  EXPECT_EQ(plain.signals, checkpointed.signals);
  expect_same_final_state(plain, checkpointed, "checkpointing on vs off");

  // The directory really is a checkpoint store: periodic snapshots plus a
  // WAL that starts with the corpus-init op.
  std::vector<std::int64_t> snaps = store::list_snapshots(dir.str());
  ASSERT_FALSE(snaps.empty());
  EXPECT_EQ(snaps.front(), 4);
  EXPECT_EQ(snaps.back(), total_windows(params));
  std::vector<store::WalOp> ops = store::wal_read(dir.str());
  ASSERT_FALSE(ops.empty());
  EXPECT_EQ(ops.front().type, "init");
  EXPECT_EQ(ops.front().clock, 0);
}

// --- the every-k sweep ---
// Resume at every single window boundary must reproduce the uninterrupted
// run: the post-k signal stream and the complete final state. Split into
// thirds so ctest can run the sweep in parallel.
void sweep_every_window(std::uint64_t seed, std::int64_t lo, std::int64_t hi) {
  WorldParams params = tiny_params(seed);
  TempDir dir("sweep");
  DriveSpec cold_spec;
  cold_spec.checkpoint_dir = dir.str();
  RunTrace cold = drive(params, cold_spec);
  ASSERT_GT(cold.signals.size(), 0u)
      << "world too quiet to exercise the engine";
  for (std::int64_t k = lo; k <= hi; ++k) {
    DriveSpec spec;
    spec.resume_from = dir.str();
    spec.resume_window = k;
    RunTrace warm = drive(params, spec);
    const std::string label = "k=" + std::to_string(k);
    EXPECT_EQ(warm.resumed_at, k) << label;
    EXPECT_EQ(window_suffix(cold.signals, k), warm.signals) << label;
    expect_same_final_state(cold, warm, label);
  }
}

TEST(CheckpointResume, ResumeAtEveryWindowFirstThird) {
  sweep_every_window(31, 1, 32);
}
TEST(CheckpointResume, ResumeAtEveryWindowMiddleThird) {
  sweep_every_window(31, 33, 64);
}
TEST(CheckpointResume, ResumeAtEveryWindowLastThird) {
  WorldParams params = tiny_params(31);
  sweep_every_window(31, 65, total_windows(params));
}

// --- the (shards x threads x pipeline x fault plan) grid ---
// Every grid point writes its own checkpoint and resumes at mid-run; the
// resumed run must match both its own cold run and the serial single-shard
// baseline (tying the resume contract to the engine determinism contract).
void grid_resume(bool faulted) {
  const std::uint64_t seed = faulted ? 47 : 46;
  WorldParams serial = tiny_params(seed, 1, 1, false, faulted);
  RunTrace baseline = drive(serial, DriveSpec{});
  ASSERT_GT(baseline.signals.size(), 0u)
      << "world too quiet to exercise the engine";
  const std::int64_t k = total_windows(serial) / 2;
  for (int shards : {1, 2}) {
    for (int threads : {1, 4}) {
      for (bool pipeline : {false, true}) {
        WorldParams params =
            tiny_params(seed, threads, shards, pipeline, faulted);
        TempDir dir("grid");
        DriveSpec cold_spec;
        cold_spec.checkpoint_dir = dir.str();
        cold_spec.checkpoint_every = 4;  // k is a multiple: exact snapshot
        RunTrace cold = drive(params, cold_spec);
        DriveSpec warm_spec;
        warm_spec.resume_from = dir.str();
        warm_spec.resume_window = k;
        RunTrace warm = drive(params, warm_spec);
        std::ostringstream os;
        os << "shards=" << shards << " threads=" << threads
           << " pipeline=" << pipeline << " faulted=" << faulted;
        const std::string point = os.str();
        EXPECT_EQ(baseline.signals, cold.signals) << point;
        EXPECT_EQ(warm.resumed_at, k) << point;
        EXPECT_EQ(window_suffix(baseline.signals, k), warm.signals) << point;
        expect_same_final_state(baseline, warm, point);
      }
    }
  }
}

TEST(CheckpointResume, GridResumeMatchesColdRun) { grid_resume(false); }
TEST(CheckpointResume, FaultedGridResumeMatchesColdRun) {
  grid_resume(true);
}

// Threads and pipelining are pure throughput knobs, so a snapshot written
// under one combination must resume under another (the fingerprint
// deliberately excludes them) and still reproduce the run byte for byte.
TEST(CheckpointResume, ResumeAcrossThroughputKnobs) {
  WorldParams writer = tiny_params(52, /*threads=*/1, /*shards=*/2,
                                   /*pipeline=*/false);
  TempDir dir("knobs");
  DriveSpec cold_spec;
  cold_spec.checkpoint_dir = dir.str();
  cold_spec.checkpoint_every = 8;
  RunTrace cold = drive(writer, cold_spec);
  WorldParams reader = tiny_params(52, /*threads=*/4, /*shards=*/2,
                                   /*pipeline=*/true);
  DriveSpec warm_spec;
  warm_spec.resume_from = dir.str();
  warm_spec.resume_window = 40;
  RunTrace warm = drive(reader, warm_spec);
  EXPECT_EQ(window_suffix(cold.signals, 40), warm.signals);
  expect_same_final_state(cold, warm, "threads=1/pipeline=off snapshot "
                                      "resumed at threads=4/pipeline=on");
}

// --- the WAL tail ---

// A run that snapshots every 8 windows, logs exogenous refresh-cycle ops
// through the World wrappers, and crashes mid-cadence must resume at the
// furthest reconstructible state (last snapshot + WAL tail) and then — with
// the driver re-attached — converge with the run that never crashed. The
// resumed run keeps checkpointing into the same directory, so a second
// resume from the rewritten store must work too.
TEST(CheckpointResume, WalTailReplayAfterMidCadenceCrash) {
  WorldParams params = tiny_params(63);
  TempDir dir("crash");

  DriveSpec ref_spec;
  ref_spec.ops = true;
  RunTrace reference = drive(params, ref_spec);
  ASSERT_GT(reference.signals.size(), 0u);

  DriveSpec crash_spec;
  crash_spec.checkpoint_dir = dir.str();
  crash_spec.checkpoint_every = 8;
  crash_spec.ops = true;
  crash_spec.stop_window = 21;  // between the snapshots at 16 and 24
  RunTrace crashed = drive(params, crash_spec);
  EXPECT_FALSE(crashed.finished);
  {
    // The WAL really holds the exogenous ops the hooks issued.
    std::vector<store::WalOp> ops = store::wal_read(dir.str());
    bool saw_plan = false, saw_refresh = false;
    for (const store::WalOp& op : ops) {
      saw_plan |= op.type == "plan";
      saw_refresh |= op.type == "refresh";
    }
    EXPECT_TRUE(saw_plan);
    EXPECT_TRUE(saw_refresh);
  }

  DriveSpec resume_spec;
  resume_spec.checkpoint_dir = dir.str();  // keep checkpointing where we left
  resume_spec.checkpoint_every = 8;
  resume_spec.resume_from = dir.str();
  resume_spec.ops = true;
  RunTrace warm = drive(params, resume_spec);
  // Crash-resume granularity: at least the last snapshot, at most the crash
  // point (windows closed after the last snapshot/op are legitimately lost).
  EXPECT_GE(warm.resumed_at, 16);
  EXPECT_LE(warm.resumed_at, 21);
  EXPECT_EQ(window_suffix(reference.signals, warm.resumed_at), warm.signals);
  expect_same_final_state(reference, warm, "first resume after crash");

  // Second generation: the continued run rewrote the WAL tail and kept
  // snapshotting, so resuming the resumed run is just as exact.
  DriveSpec again_spec;
  again_spec.resume_from = dir.str();
  again_spec.resume_window = 40;
  again_spec.ops = true;
  RunTrace again = drive(params, again_spec);
  EXPECT_EQ(again.resumed_at, 40);
  EXPECT_EQ(window_suffix(reference.signals, 40), again.signals);
  expect_same_final_state(reference, again, "resume of the resumed run");
}

// No snapshot at all (cadence longer than the crashed run): resume must
// rebuild purely from the WAL — full live replay from window zero.
TEST(CheckpointResume, ResumeFromWalOnlyWhenNoSnapshotExists) {
  WorldParams params = tiny_params(64);
  TempDir dir("walonly");
  DriveSpec ref_spec;
  ref_spec.ops = true;
  RunTrace reference = drive(params, ref_spec);

  DriveSpec crash_spec;
  crash_spec.checkpoint_dir = dir.str();
  crash_spec.checkpoint_every = 200;  // never reached: WAL is all there is
  crash_spec.ops = true;
  crash_spec.stop_window = 21;
  drive(params, crash_spec);
  EXPECT_TRUE(store::list_snapshots(dir.str()).empty());

  DriveSpec resume_spec;
  resume_spec.resume_from = dir.str();
  resume_spec.ops = true;
  RunTrace warm = drive(params, resume_spec);
  EXPECT_GT(warm.resumed_at, 0);
  EXPECT_LE(warm.resumed_at, 21);
  EXPECT_EQ(window_suffix(reference.signals, warm.resumed_at), warm.signals);
  expect_same_final_state(reference, warm, "WAL-only resume");
}

// --- storage faults on the checkpoint path (DESIGN.md §14) ---

// (crash-at-window-k x io-fault-seed) grid under a silent-only fault plan
// (torn writes, bit flips, crash-renames — nothing is ever reported to the
// writer). The crashed directory holds checksummed-but-damaged artifacts;
// a RecoveryManager scrub must turn it back into one the resume path
// loads, and the resumed run must converge with the never-faulted,
// never-crashed reference. Storage faults are a robustness knob outside
// the params fingerprint, so the faulted writer's snapshots anchor a
// fault-free resume and vice versa.
//
// No exogenous WAL ops here: a torn append can sever the log *inside* a
// hook's op group, and replaying a partial group while the live hook
// re-issues it is exactly the duplicate-delivery hazard the supervisor's
// resume_window = last_hook_window + 1 discipline exists to prevent
// (pinned in recovery_test.cpp). An unsupervised resume_window = -1 is
// only exact for state the world re-simulates deterministically.
TEST(CheckpointResume, SilentFaultCrashScrubResumeGrid) {
  WorldParams params = tiny_params(65);
  RunTrace reference = drive(params, DriveSpec{});
  ASSERT_GT(reference.signals.size(), 0u)
      << "world too quiet to exercise the engine";

  for (std::int64_t k : {9, 21}) {
    for (std::uint64_t io_seed : {5u, 6u}) {
      const std::string label =
          "k=" + std::to_string(k) + " io_seed=" + std::to_string(io_seed);
      TempDir dir("silent");
      WorldParams faulted = params;
      faulted.io_fault_plan.torn_write_rate = 0.05;
      faulted.io_fault_plan.bit_flip_rate = 0.03;
      faulted.io_fault_plan.crash_rename_rate = 0.05;
      faulted.io_fault_plan.seed = io_seed;

      DriveSpec crash_spec;
      crash_spec.checkpoint_dir = dir.str();
      crash_spec.checkpoint_every = 4;
      crash_spec.stop_window = k;
      RunTrace crashed = drive(faulted, crash_spec);
      EXPECT_FALSE(crashed.finished) << label;

      // Scrub exactly as the supervisor would before a resume: damaged
      // snapshots and stranded temp files quarantined, the WAL truncated
      // at its first bad frame.
      store::RecoveryManager manager(dir.str());
      manager.scrub(World::fingerprint(faulted));

      DriveSpec resume_spec;
      resume_spec.resume_from = dir.str();
      RunTrace warm = drive(faulted, resume_spec);
      EXPECT_LE(warm.resumed_at, k) << label;
      EXPECT_EQ(window_suffix(reference.signals, warm.resumed_at),
                warm.signals)
          << label;
      expect_same_final_state(reference, warm, label);
    }
  }
}

// Reported-but-transient faults under a retry budget: every injected
// ENOSPC / EIO clears within the policy's attempts, so the run completes
// without crashing, the final state is byte-identical to the fault-free
// reference, and the retry layer's tallies prove the plan actually fired.
TEST(CheckpointResume, TransientReportedFaultsAreInvisibleUnderRetry) {
  WorldParams params = tiny_params(66);
  RunTrace reference = drive(params, DriveSpec{});
  ASSERT_GT(reference.signals.size(), 0u);

  TempDir dir("transient");
  WorldParams faulted = params;
  faulted.checkpoint_dir = dir.str();
  faulted.checkpoint_every = 4;
  faulted.io_fault_plan.enospc_rate = 0.05;
  faulted.io_fault_plan.eio_write_rate = 0.03;
  faulted.io_fault_plan.eio_fsync_rate = 0.02;
  faulted.io_fault_plan.transient_fraction = 1.0;  // retries always win
  faulted.io_fault_plan.transient_clears_after = 2;
  faulted.io_fault_plan.seed = 7;
  faulted.io_retry.max_attempts = 4;
  faulted.io_retry.base_delay_us = 10;
  faulted.io_retry.max_delay_us = 100;

  World world(faulted);
  RunTrace trace;
  World::Hooks hooks;
  hooks.on_signals = [&](std::int64_t window, TimePoint,
                         std::vector<signals::StalenessSignal>&& sigs) {
    for (const signals::StalenessSignal& s : sigs) {
      trace.signals.emplace_back(window, s.pair.probe, s.pair.dst.value(),
                                 static_cast<int>(s.technique), s.potential,
                                 s.border_index, s.time.seconds());
    }
  };
  world.run_until(world.corpus_t0(), hooks);
  world.initialize_corpus();
  world.run_until(world.end(), hooks);
  trace.stale = world.engine().stale_pairs();
  trace.calibration_digest = world.engine().calibration().digest();
  trace.semantic_stats = world.semantic_stats_json();
  std::ostringstream corpus;
  std::vector<tr::Traceroute> finals;
  for (const tr::PairKey& pair : world.ground_truth().pairs()) {
    finals.push_back(world.issue_corpus_traceroute(pair, world.end()));
  }
  io::write_traceroutes(corpus, finals);
  trace.corpus_bytes = corpus.str();
  trace.finished = true;

  EXPECT_EQ(reference.signals, trace.signals);
  expect_same_final_state(reference, trace, "transient faults + retry");

  ASSERT_NE(world.io_context(), nullptr);
  const store::IoStats& io = world.io_context()->stats();
  EXPECT_GT(io.injected_enospc + io.injected_eio, 0)
      << "fault plan never fired; the test exercised nothing";
  EXPECT_GT(io.retries, 0);
  EXPECT_EQ(io.gave_up, 0) << "a transient fault exhausted the retry budget";
}

// --- the fig11 warm-start arm, in miniature (bench reproducibility) ---
// An archival-reuse-flavored world (no free recalibration, probe churn)
// checkpointed to the end and resumed at the final window: the warm world
// must report the same rrr-stats-v1 semantic snapshot byte for byte — the
// property the bench-level smoke test (tools/resume_smoke.py) checks
// through the real fig11 binary and its --stats-json files.
TEST(CheckpointResume, SemanticStatsByteIdenticalColdVsWarmFinalWindow) {
  WorldParams params = tiny_params(55);
  params.recalibration_interval_windows = 0;
  params.platform.probe_death_per_day = 0.006;
  TempDir dir("fig11");
  DriveSpec cold_spec;
  cold_spec.checkpoint_dir = dir.str();
  cold_spec.checkpoint_every = 16;
  RunTrace cold = drive(params, cold_spec);
  DriveSpec warm_spec;
  warm_spec.resume_from = dir.str();  // default window: furthest state
  RunTrace warm = drive(params, warm_spec);
  EXPECT_EQ(warm.resumed_at, total_windows(params));
  EXPECT_TRUE(warm.signals.empty());  // nothing left to run
  ASSERT_NE(cold.semantic_stats.find("rrr_signals_emitted_total"),
            std::string::npos);
  expect_same_final_state(cold, warm, "cold vs warm final-window resume");
}

// --- rejection: malformed snapshots are classified errors, not UB ---

TEST(CheckpointResume, MalformedSnapshotRejectionTable) {
  WorldParams params = tiny_params(71);
  TempDir dir("malformed");
  DriveSpec make_spec;
  make_spec.checkpoint_dir = dir.str();
  make_spec.checkpoint_every = 2;
  make_spec.stop_window = 6;
  drive(params, make_spec);
  const std::string snap_path = dir.str() + "/" + store::snapshot_name(6);
  const std::string good = read_bytes(snap_path);
  ASSERT_GT(good.size(), 64u);

  std::string future_version;
  store::append_frame_versioned(future_version, "rrr.snapshot",
                                "from-the-future",
                                store::kFormatVersion + 1);
  // Version checking is exact-match in both directions: a v1 snapshot (no
  // table attribute dictionaries) must be rejected, not misparsed.
  std::string old_version;
  store::append_frame_versioned(old_version, "rrr.snapshot",
                                "from-the-past", store::kFormatVersion - 1);

  struct Case {
    const char* label;
    std::string bytes;
    store::StoreError::Kind want;
  };
  std::string checksum_flip = good;
  checksum_flip[checksum_flip.size() - 1] ^= 0x5A;  // inside the checksum
  std::string payload_flip = good;
  payload_flip[good.size() / 2] ^= 0x5A;  // inside a section payload
  std::string bad_magic = good;
  bad_magic[0] ^= 0x20;
  std::vector<Case> cases = {
      // No bytes at all is not a short frame but a structurally headerless
      // snapshot — classified kCorrupt ("snapshot missing header frame").
      {"empty file", std::string(), store::StoreError::Kind::kCorrupt},
      {"truncated mid-frame", good.substr(0, good.size() / 2),
       store::StoreError::Kind::kTruncated},
      {"truncated mid-header", good.substr(0, 10),
       store::StoreError::Kind::kTruncated},
      {"checksum byte flipped", checksum_flip,
       store::StoreError::Kind::kBadChecksum},
      {"payload byte flipped", payload_flip,
       store::StoreError::Kind::kBadChecksum},
      {"bad magic", bad_magic, store::StoreError::Kind::kCorrupt},
      {"future container version", future_version,
       store::StoreError::Kind::kVersionSkew},
      {"pre-dictionary container version", old_version,
       store::StoreError::Kind::kVersionSkew},
  };
  for (const Case& c : cases) {
    write_bytes(snap_path, c.bytes);
    DriveSpec spec;
    spec.resume_from = dir.str();
    spec.resume_window = 6;
    store::StoreError error = resume_error(params, spec);
    EXPECT_EQ(error.kind(), c.want)
        << c.label << ": " << error.what();
  }
  // Restore the pristine snapshot: the store must work again untouched.
  write_bytes(snap_path, good);
  DriveSpec ok_spec;
  ok_spec.resume_from = dir.str();
  ok_spec.resume_window = 6;
  RunTrace warm = drive(params, ok_spec);
  EXPECT_EQ(warm.resumed_at, 6);
  EXPECT_TRUE(warm.finished);
}

// The v2 table snapshot carries local attribute dictionaries (paths and
// community sets as *content*, routes as u32 indices). The bytes must be a
// pure function of table content — independent of the process-global
// intern-id assignment history — so saving, loading into a world whose
// interner assigned ids in a different order, and saving again is
// byte-identical.
TEST(CheckpointResume, TableSnapshotDictionaryIsContentPure) {
  auto make_record = [](std::uint32_t vp, std::uint32_t net,
                        std::initializer_list<std::uint32_t> hops) {
    bgp::BgpRecord record;
    record.vp = vp;
    record.prefix = Prefix(Ipv4(net), 24);
    AsPath path;
    for (std::uint32_t h : hops) path.push_back(Asn(h));
    record.as_path = path;
    CommunitySet comms;
    comms.insert(Community(Asn(hops.size() ? *hops.begin() : 1), 7));
    record.communities = comms;
    record.time = TimePoint(1000);
    return record;
  };

  std::string first_bytes;
  {
    Interner::ScopedInstance interner;
    bgp::VpTableView table;
    table.apply(make_record(1, 0x0A000000, {64500, 64501}));
    table.apply(make_record(1, 0x0A000100, {64502}));
    table.apply(make_record(2, 0x0A000000, {64500, 64501}));
    store::Encoder enc;
    table.save_state(enc);
    first_bytes = enc.buffer();
  }
  std::string second_bytes;
  {
    Interner::ScopedInstance interner;
    // Pre-seed the fresh interner so the same contents land on *different*
    // global ids than in the first scope.
    for (std::uint32_t i = 0; i < 50; ++i) {
      AsPath noise;
      noise.push_back(Asn(90000 + i));
      interner.get().path_id(noise);
    }
    bgp::VpTableView table;
    store::Decoder dec(first_bytes);
    table.load_state(dec);
    store::Encoder enc;
    table.save_state(enc);
    second_bytes = enc.buffer();
  }
  ASSERT_FALSE(first_bytes.empty());
  EXPECT_EQ(first_bytes, second_bytes);
}

// A route row whose dictionary index points past the dictionary is a
// classified kCorrupt, not an out-of-bounds read.
TEST(CheckpointResume, TableSnapshotDanglingDictionaryIndexIsRejected) {
  store::Encoder enc;
  enc.u32(0);  // empty path dictionary
  enc.u32(0);  // empty community-set dictionary
  enc.u64(1);  // one VP
  enc.u32(7);  // VP id
  enc.u64(1);  // one route
  store::put(enc, Prefix(Ipv4(0x0A000000), 24));
  enc.u32(0);  // path index 0 — but the dictionary is empty
  enc.u32(0);  // community index, same
  bgp::VpTableView table;
  store::Decoder dec(enc.buffer());
  try {
    table.load_state(dec);
    FAIL() << "expected StoreError";
  } catch (const store::StoreError& e) {
    EXPECT_EQ(e.kind(), store::StoreError::Kind::kCorrupt);
  }
}

TEST(CheckpointResume, CorruptedWalIsRejected) {
  WorldParams params = tiny_params(72);
  TempDir dir("badwal");
  DriveSpec make_spec;
  make_spec.checkpoint_dir = dir.str();
  make_spec.stop_window = 4;
  drive(params, make_spec);
  const std::string wal_path = dir.str() + "/wal.log";
  std::string wal = read_bytes(wal_path);
  ASSERT_FALSE(wal.empty());
  wal[wal.size() / 2] ^= 0x5A;
  write_bytes(wal_path, wal);
  DriveSpec spec;
  spec.resume_from = dir.str();
  EXPECT_EQ(resume_error(params, spec).kind(),
            store::StoreError::Kind::kBadChecksum);
}

TEST(CheckpointResume, UnknownWalOpIsRejected) {
  WorldParams params = tiny_params(73);
  TempDir dir("bogusop");
  DriveSpec make_spec;
  make_spec.checkpoint_dir = dir.str();
  make_spec.stop_window = 4;
  drive(params, make_spec);
  store::WalOp bogus;
  bogus.clock = 2;
  bogus.point = 2;  // ReplayPoint::kBoundary
  bogus.type = "defragment";
  store::wal_append(dir.str(), bogus);
  DriveSpec spec;
  spec.resume_from = dir.str();
  spec.resume_window = 4;
  store::StoreError error = resume_error(params, spec);
  EXPECT_EQ(error.kind(), store::StoreError::Kind::kCorrupt);
  EXPECT_NE(std::string(error.what()).find("defragment"), std::string::npos);
}

TEST(CheckpointResume, FingerprintMismatchIsRejected) {
  WorldParams writer = tiny_params(74);
  TempDir dir("fingerprint");
  DriveSpec make_spec;
  make_spec.checkpoint_dir = dir.str();
  make_spec.stop_window = 4;
  drive(writer, make_spec);
  // A different seed is a different timeline; the snapshot must refuse.
  WorldParams reader = tiny_params(75);
  DriveSpec spec;
  spec.resume_from = dir.str();
  spec.resume_window = 4;
  store::StoreError error = resume_error(reader, spec);
  EXPECT_EQ(error.kind(), store::StoreError::Kind::kCorrupt);
  EXPECT_NE(std::string(error.what()).find("different world parameters"),
            std::string::npos);
}

TEST(CheckpointResume, ShardCountMismatchIsRejected) {
  WorldParams writer = tiny_params(76, /*threads=*/1, /*shards=*/1);
  TempDir dir("shards");
  DriveSpec make_spec;
  make_spec.checkpoint_dir = dir.str();
  make_spec.stop_window = 4;
  drive(writer, make_spec);
  // Shard count shapes the engine's serialized layout; the fingerprint
  // passes (it is a throughput knob) but the engine's own loader refuses.
  WorldParams reader = tiny_params(76, /*threads=*/1, /*shards=*/2);
  DriveSpec spec;
  spec.resume_from = dir.str();
  spec.resume_window = 4;
  EXPECT_EQ(resume_error(reader, spec).kind(),
            store::StoreError::Kind::kCorrupt);
}

TEST(CheckpointResume, ResumeBeyondWorldEndIsRejected) {
  WorldParams params = tiny_params(77);
  TempDir dir("beyond");
  DriveSpec make_spec;
  make_spec.checkpoint_dir = dir.str();
  make_spec.stop_window = 4;
  drive(params, make_spec);
  DriveSpec spec;
  spec.resume_from = dir.str();
  spec.resume_window = total_windows(params) + 10;
  EXPECT_EQ(resume_error(params, spec).kind(),
            store::StoreError::Kind::kCorrupt);
}

TEST(CheckpointResume, MissingResumeDirectoryIsRejected) {
  WorldParams params = tiny_params(78);
  TempDir dir("missing");
  DriveSpec spec;
  spec.resume_from = dir.str() + "/nope";
  EXPECT_EQ(resume_error(params, spec).kind(),
            store::StoreError::Kind::kIo);
}

// --- FeedHealthTracker round-trip (the quarantine state machine) ---
// Save mid-run with one stream quarantined and its EWMA baseline mid-decay;
// the restored tracker's judgements must be bit-identical from there on —
// checked both through the query surface and by re-serializing after every
// subsequent window.
TEST(CheckpointResume, FeedHealthTrackerRoundTripsBitIdentically) {
  signals::FeedHealthParams p;
  p.enabled = true;
  p.warmup_windows = 4;
  p.suspect_windows = 2;
  p.recover_windows = 4;
  p.judge_mass = 8.0;  // short horizons: judgements nearly per window
  p.max_horizon_windows = 8;
  signals::FeedHealthTracker live(p);

  // Collector rrc00 (vp 1) and probe 7 stay healthy; collector rrc01
  // (vp 2) and probe 8 fall silent over [10, 16) and then return, so the
  // save point (after window 17) lands mid-recovery.
  auto feed_window = [&](signals::FeedHealthTracker& t, std::int64_t w) {
    for (int i = 0; i < 6; ++i) {
      t.count_bgp(1, "rrc00", w);
      t.count_trace(7, w);
    }
    if (w < 10 || w >= 16) {
      for (int i = 0; i < 5; ++i) {
        t.count_bgp(2, "rrc01", w);
        t.count_trace(8, w);
      }
    }
    t.close_window(w);
  };
  bool was_dead = false;
  for (std::int64_t w = 0; w < 18; ++w) {
    feed_window(live, w);
    was_dead |= live.trace_state(8) == signals::FeedState::kDead;
  }
  ASSERT_TRUE(was_dead) << "the silent stream never reached kDead";
  ASSERT_TRUE(live.trace_quarantined(8))
      << "save point not mid-quarantine; state "
      << to_string(live.trace_state(8));
  ASSERT_TRUE(live.bgp_quarantined(2));

  store::Encoder enc;
  live.save_state(enc);
  signals::FeedHealthTracker restored(p);
  store::Decoder dec(enc.buffer());
  restored.load_state(dec);
  dec.expect_done();

  // Restoring is lossless: re-serializing yields the same bytes.
  store::Encoder again;
  restored.save_state(again);
  EXPECT_EQ(enc.buffer(), again.buffer());

  for (std::int64_t w = 18; w < 40; ++w) {
    feed_window(live, w);
    feed_window(restored, w);
    const std::string label = "window " + std::to_string(w);
    for (bgp::VpId vp : {bgp::VpId(1), bgp::VpId(2)}) {
      EXPECT_EQ(live.bgp_state(vp), restored.bgp_state(vp)) << label;
      EXPECT_EQ(live.bgp_quarantined(vp), restored.bgp_quarantined(vp))
          << label;
    }
    for (tr::ProbeId probe : {tr::ProbeId(7), tr::ProbeId(8)}) {
      EXPECT_EQ(live.trace_state(probe), restored.trace_state(probe))
          << label;
      EXPECT_EQ(live.trace_quarantined(probe),
                restored.trace_quarantined(probe))
          << label;
    }
    EXPECT_EQ(live.bgp_degraded(), restored.bgp_degraded()) << label;
    EXPECT_EQ(live.trace_degraded(), restored.trace_degraded()) << label;
    EXPECT_EQ(live.bgp_quarantined_fraction(),
              restored.bgp_quarantined_fraction())
        << label;
    EXPECT_EQ(live.trace_quarantined_fraction(),
              restored.trace_quarantined_fraction())
        << label;
    store::Encoder ea, eb;
    live.save_state(ea);
    restored.save_state(eb);
    EXPECT_EQ(ea.buffer(), eb.buffer()) << label;
  }
  // The recovered stream made it back to healthy across the restore.
  EXPECT_EQ(live.trace_state(8), signals::FeedState::kHealthy);
  EXPECT_EQ(restored.trace_state(8), signals::FeedState::kHealthy);
}

// --- on-disk format pinning ---

// The frame layout documented in store/framing.h, reproduced here by hand:
// any accidental layout change (field order, endianness, checksum seeding)
// breaks this before it breaks someone's archived checkpoint.
TEST(CheckpointResume, FrameLayoutMatchesDocumentedSpec) {
  std::string frame;
  store::append_frame(frame, "wal.op", "payload-bytes");

  std::string want;
  auto u32le = [&](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      want.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
  };
  auto u64le = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      want.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
  };
  want += "RRRS";
  u32le(store::kFormatVersion);
  u64le(6);
  want += "wal.op";
  u64le(13);
  want += "payload-bytes";
  u64le(store::fnv1a64("payload-bytes", store::fnv1a64("wal.op")));
  EXPECT_EQ(frame, want);
}

// Golden snapshot fixture: when RRR_GOLDEN_SNAPSHOT_DIR is set (CI does),
// write a deterministic checkpoint there — uploaded as an artifact so
// format regressions are diffable across PRs — and prove it resumes.
TEST(CheckpointResume, GoldenSnapshotFixture) {
  const char* golden = std::getenv("RRR_GOLDEN_SNAPSHOT_DIR");
  if (golden == nullptr) {
    GTEST_SKIP() << "RRR_GOLDEN_SNAPSHOT_DIR not set";
  }
  store::ensure_dir(golden);
  WorldParams params = tiny_params(7);
  DriveSpec make_spec;
  make_spec.checkpoint_dir = golden;
  make_spec.checkpoint_every = 4;
  make_spec.stop_window = 8;
  drive(params, make_spec);
  DriveSpec spec;
  spec.resume_from = golden;
  spec.resume_window = 8;
  RunTrace warm = drive(params, spec);
  EXPECT_EQ(warm.resumed_at, 8);
  EXPECT_TRUE(warm.finished);
  // Sidecar digest so artifact diffs have a one-line summary.
  const std::string snap =
      std::string(golden) + "/" + store::snapshot_name(8);
  std::ofstream digest(std::string(golden) + "/DIGEST.txt");
  digest << store::snapshot_name(8) << " fnv1a64="
         << store::fnv1a64(read_bytes(snap)) << "\n";
}

}  // namespace
}  // namespace rrr::eval
