// Tests for the BGP layer: table views, preprocessing (§4.1.1), the stream
// API, and the feed simulator's update semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "bgp/feed.h"
#include "bgp/stream.h"
#include "bgp/table_view.h"
#include "topology/builder.h"

namespace rrr::bgp {
namespace {

BgpRecord make_record(VpId vp, const char* prefix, AsPath path,
                      CommunitySet communities = {},
                      RecordType type = RecordType::kAnnouncement,
                      std::int64_t t = 0) {
  BgpRecord record;
  record.time = TimePoint(t);
  record.type = type;
  record.vp = vp;
  record.prefix = *Prefix::parse(prefix);
  record.as_path = std::move(path);
  record.communities = std::move(communities);
  return record;
}

TEST(Preprocess, RejectsMoreSpecificThanSlash24) {
  EXPECT_TRUE(acceptable_prefix(*Prefix::parse("10.0.0.0/24")));
  EXPECT_FALSE(acceptable_prefix(*Prefix::parse("10.0.0.0/25")));
  EXPECT_FALSE(acceptable_prefix(*Prefix::parse("10.0.0.1/32")));
}

TEST(Preprocess, StripsIxpAsnsAndPrepending) {
  AsPath path = {Asn(100), Asn(100), Asn(59001), Asn(200), Asn(200),
                 Asn(200), Asn(300)};
  AsPath stripped = strip_ixp_asns(path, {Asn(59001)});
  EXPECT_EQ(to_string(stripped), "100 100 200 200 200 300");
  EXPECT_EQ(to_string(collapse_prepending(stripped)), "100 200 300");
}

TEST(VpTableView, MostSpecificPrefixWins) {
  VpTableView view;
  view.apply(make_record(1, "10.0.0.0/8", {Asn(1), Asn(2)}));
  view.apply(make_record(1, "10.1.0.0/16", {Asn(1), Asn(3)}));
  const VpRoute* route = view.route(1, *Ipv4::parse("10.1.5.5"));
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(to_string(route->path), "1 3");
  EXPECT_EQ(view.most_specific_prefix(1, *Ipv4::parse("10.1.5.5"))
                ->to_string(),
            "10.1.0.0/16");
  EXPECT_EQ(view.most_specific_prefix(1, *Ipv4::parse("10.9.5.5"))
                ->to_string(),
            "10.0.0.0/8");
}

TEST(VpTableView, WithdrawalRemovesRoute) {
  VpTableView view;
  view.apply(make_record(1, "10.1.0.0/16", {Asn(1)}));
  view.apply(make_record(1, "10.1.0.0/16", {}, {},
                         RecordType::kWithdrawal, 10));
  EXPECT_EQ(view.route(1, *Ipv4::parse("10.1.0.1")), nullptr);
}

TEST(VpTableView, TablesAreIsolatedPerVp) {
  VpTableView view;
  view.apply(make_record(1, "10.1.0.0/16", {Asn(1)}));
  EXPECT_NE(view.route(1, *Ipv4::parse("10.1.0.1")), nullptr);
  EXPECT_EQ(view.route(2, *Ipv4::parse("10.1.0.1")), nullptr);
  EXPECT_EQ(view.vps().size(), 1u);
}

TEST(VpTableView, DropsUnacceptablePrefixes) {
  VpTableView view;
  EXPECT_FALSE(view.apply(make_record(1, "10.1.0.0/28", {Asn(1)})));
  EXPECT_EQ(view.route_count(1), 0u);
}

TEST(Stream, FiltersByTimeTypeAndPrefix) {
  BgpStream stream;
  stream.push(make_record(1, "10.0.0.0/16", {Asn(1)}, {},
                          RecordType::kAnnouncement, 100));
  stream.push(make_record(2, "11.0.0.0/16", {Asn(2)}, {},
                          RecordType::kAnnouncement, 200));
  stream.push(make_record(3, "10.0.0.0/16", {}, {},
                          RecordType::kWithdrawal, 300));

  StreamFilter filter;
  filter.from = TimePoint(150);
  filter.type = RecordType::kAnnouncement;
  stream.set_filter(filter);
  auto record = stream.next();
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->vp, 2u);
  EXPECT_FALSE(stream.next().has_value());

  stream.rewind();
  StreamFilter by_prefix;
  by_prefix.prefixes = {*Prefix::parse("10.0.0.0/8")};
  stream.set_filter(by_prefix);
  int count = 0;
  while (stream.next()) ++count;
  EXPECT_EQ(count, 2);
}

TEST(Stream, DeliversInTimestampOrder) {
  BgpStream stream;
  stream.push(make_record(1, "10.0.0.0/16", {Asn(1)}, {},
                          RecordType::kAnnouncement, 300));
  stream.push(make_record(1, "10.0.0.0/16", {Asn(1)}, {},
                          RecordType::kAnnouncement, 100));
  stream.push(make_record(1, "10.0.0.0/16", {Asn(1)}, {},
                          RecordType::kAnnouncement, 200));
  std::int64_t last = -1;
  while (auto record = stream.next()) {
    EXPECT_GE(record->time.seconds(), last);
    last = record->time.seconds();
  }
  EXPECT_EQ(last, 300);
}

TEST(Stream, LatePushIsDeliveredWithoutDisturbingTheCursor) {
  BgpStream stream;
  stream.push(make_record(1, "10.0.0.0/16", {Asn(1)}, {},
                          RecordType::kAnnouncement, 100));
  stream.push(make_record(2, "10.0.0.0/16", {Asn(1)}, {},
                          RecordType::kAnnouncement, 300));
  auto first = stream.next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->vp, 1u);
  // This push lands "before" the cursor position by timestamp. It must not
  // be skipped (old bug: the full-vector re-sort moved it behind the
  // cursor) and the already-delivered record must not come again.
  stream.push(make_record(3, "10.0.0.0/16", {Asn(1)}, {},
                          RecordType::kAnnouncement, 50));
  std::vector<VpId> rest;
  while (auto record = stream.next()) rest.push_back(record->vp);
  EXPECT_EQ(rest, (std::vector<VpId>{3, 2}));
}

TEST(Stream, NoDoubleDeliveryAcrossManyLatePushes) {
  BgpStream stream;
  for (int i = 0; i < 5; ++i) {
    stream.push(make_record(static_cast<VpId>(i), "10.0.0.0/16", {Asn(1)},
                            {}, RecordType::kAnnouncement, i * 100));
  }
  std::vector<VpId> seen;
  int pushes = 5;
  while (auto record = stream.next()) {
    seen.push_back(record->vp);
    if (pushes < 8) {
      // Interleave pushes with earlier timestamps than anything delivered.
      stream.push(make_record(static_cast<VpId>(pushes++ + 100),
                              "10.0.0.0/16", {Asn(1)}, {},
                              RecordType::kAnnouncement, 1));
    }
  }
  EXPECT_EQ(seen.size(), 8u);
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::unique(seen.begin(), seen.end()), seen.end());
}

TEST(Stream, RewindReplaysEverythingInTimestampOrder) {
  BgpStream stream;
  stream.push(make_record(1, "10.0.0.0/16", {Asn(1)}, {},
                          RecordType::kAnnouncement, 200));
  (void)stream.next();
  stream.push(make_record(2, "10.0.0.0/16", {Asn(1)}, {},
                          RecordType::kAnnouncement, 100));
  stream.rewind();
  std::vector<VpId> replay;
  while (auto record = stream.next()) replay.push_back(record->vp);
  // After rewind the late push sorts to its timestamp position.
  EXPECT_EQ(replay, (std::vector<VpId>{2, 1}));
}

TEST(StreamFilter, UntilBoundaryIsExclusive) {
  StreamFilter filter;
  filter.from = TimePoint(100);
  filter.until = TimePoint(200);
  EXPECT_TRUE(filter.matches(
      make_record(1, "10.0.0.0/16", {Asn(1)}, {},
                  RecordType::kAnnouncement, 100)));  // from is inclusive
  EXPECT_TRUE(filter.matches(make_record(
      1, "10.0.0.0/16", {Asn(1)}, {}, RecordType::kAnnouncement, 199)));
  EXPECT_FALSE(filter.matches(make_record(
      1, "10.0.0.0/16", {Asn(1)}, {}, RecordType::kAnnouncement, 200)));
}

TEST(StreamFilter, OverlappingPrefixCoversMatchOnce) {
  StreamFilter filter;
  filter.prefixes = {*Prefix::parse("10.0.0.0/8"),
                     *Prefix::parse("10.1.0.0/16")};
  BgpStream stream;
  stream.push(make_record(1, "10.1.2.0/24", {Asn(1)}, {},
                          RecordType::kAnnouncement, 0));
  stream.push(make_record(2, "10.9.0.0/16", {Asn(1)}, {},
                          RecordType::kAnnouncement, 10));
  stream.push(make_record(3, "11.0.0.0/16", {Asn(1)}, {},
                          RecordType::kAnnouncement, 20));
  stream.set_filter(filter);
  // A record covered by *both* prefixes is still delivered exactly once.
  int count = 0;
  while (stream.next()) ++count;
  EXPECT_EQ(count, 2);
}

TEST(StreamFilter, EmptyAndPopulatedListsCompose) {
  BgpRecord record = make_record(7, "10.0.0.0/16", {Asn(65001)}, {},
                                 RecordType::kAnnouncement, 0);
  record.collector = "rrc00";
  record.peer_asn = Asn(65001);

  StreamFilter empty_lists;  // empty collector/peer lists = match all
  EXPECT_TRUE(empty_lists.matches(record));

  StreamFilter by_collector = empty_lists;
  by_collector.collectors = {"rrc01", "rrc00"};
  EXPECT_TRUE(by_collector.matches(record));
  by_collector.collectors = {"rrc01"};
  EXPECT_FALSE(by_collector.matches(record));

  // A populated peer list composes with the (empty) collector list: the
  // empty one stays permissive, the populated one restricts.
  StreamFilter by_peer;
  by_peer.peer_asns = {Asn(65001)};
  EXPECT_TRUE(by_peer.matches(record));
  by_peer.collectors = {"rrc01"};
  EXPECT_FALSE(by_peer.matches(record));
}

class FeedFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    topo::TopologyParams params;
    params.num_tier1 = 4;
    params.num_transit = 16;
    params.num_stub = 40;
    params.seed = 31;
    topology_ = topo::build_topology(params);
    cp_ = std::make_unique<routing::ControlPlane>(topology_, 31);
    std::vector<topo::AsIndex> candidates;
    for (topo::AsIndex as = 0; as < topology_.as_count(); ++as) {
      candidates.push_back(as);
    }
    origins_ = {1, 2, 3, 4, 5};
    FeedParams fp;
    fp.vp_as_fraction = 0.3;
    fp.seed = 31;
    feed_ = std::make_unique<FeedSimulator>(*cp_, fp, candidates, origins_);
  }
  topo::Topology topology_;
  std::unique_ptr<routing::ControlPlane> cp_;
  std::unique_ptr<FeedSimulator> feed_;
  std::vector<topo::AsIndex> origins_;
};

TEST_F(FeedFixture, InitialRibCoversCachedRoutes) {
  auto rib = feed_->initial_rib(TimePoint(0));
  EXPECT_GT(rib.size(), feed_->vantage_points().size());
  for (const BgpRecord& record : rib) {
    EXPECT_EQ(record.type, RecordType::kRibEntry);
    EXPECT_FALSE(record.as_path.empty());
    // The announcing VP's own AS leads the path.
    EXPECT_EQ(record.as_path.front(), record.peer_asn);
  }
}

TEST_F(FeedFixture, AdjacencyFailureEmitsNewPathsOrWithdrawals) {
  // Fail an adjacency that some VP uses for origin 1.
  cp_->warm_origin(1);
  const routing::RouteTable& table = cp_->table_for(1);
  topo::LinkId victim = topo::kNoLink;
  for (const VantagePoint& vp : feed_->vantage_points()) {
    const routing::Route& route = table.at(vp.as_index);
    if (route.reachable() && route.via_link != topo::kNoLink) {
      victim = route.via_link;
      break;
    }
  }
  ASSERT_NE(victim, topo::kNoLink);

  routing::Event down;
  down.kind = routing::EventKind::kAdjacencyDown;
  down.link = victim;
  down.time = TimePoint(1000);
  auto impact = cp_->apply(down);
  auto records = feed_->on_event(down, impact);
  ASSERT_FALSE(records.empty());
  bool path_change_seen = false;
  for (const BgpRecord& record : records) {
    EXPECT_GE(record.time, down.time);  // jitter is forward-only
    if (record.type == RecordType::kAnnouncement &&
        !record.as_path.empty()) {
      path_change_seen = true;
    }
  }
  EXPECT_TRUE(path_change_seen);
}

TEST_F(FeedFixture, ParrotEmitsIdenticalAnnouncement) {
  ASSERT_FALSE(feed_->vantage_points().empty());
  const VantagePoint& vp = feed_->vantage_points().front();
  const routing::RouteAttributes* cached =
      feed_->cached_attributes(vp.id, origins_[0]);
  if (cached == nullptr || !cached->reachable()) GTEST_SKIP();

  routing::Event parrot;
  parrot.kind = routing::EventKind::kParrotUpdate;
  parrot.as = vp.as_index;
  parrot.origin = origins_[0];
  parrot.time = TimePoint(5000);
  routing::ControlPlane::Impact no_impact;
  auto records = feed_->on_event(parrot, no_impact);
  ASSERT_FALSE(records.empty());
  for (const BgpRecord& record : records) {
    EXPECT_EQ(record.as_path, cached->path);
    EXPECT_EQ(record.communities, cached->communities);
  }
}

}  // namespace
}  // namespace rrr::bgp
