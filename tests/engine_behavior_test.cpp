// Behavioral tests of StalenessEngine policies: signal cooldown, freshness
// lifecycle, refresh grading, revocation (§4.3.2), and the refresh planner
// wiring (§4.3.1).
#include <gtest/gtest.h>

#include "eval/world.h"

namespace rrr {
namespace {

eval::WorldParams tiny_params(std::uint64_t seed = 71) {
  eval::WorldParams params;
  params.days = 5;
  params.warmup_days = 1;
  params.corpus_pair_target = 250;
  params.corpus_dest_count = 15;
  params.public_dest_count = 60;
  params.public_traces_per_window = 400;
  params.platform.num_probes = 300;
  params.topology.num_transit = 30;
  params.topology.num_stub = 100;
  params.recalibration_interval_windows = 0;
  params.dynamics = routing::DynamicsParams{};
  params.dynamics.interconnect_flap_per_day = 0;
  params.dynamics.egress_shift_per_day = 0;
  params.dynamics.adjacency_flap_per_day = 0;
  params.dynamics.preferred_link_shift_per_day = 0;
  params.dynamics.te_community_churn_per_day = 0;
  params.dynamics.parrot_update_per_day = 0;
  params.dynamics.ixp_join_per_day = 0;
  params.prober.silent_router_fraction = 0;
  params.prober.intermittent_loss_prob = 0;
  params.prober.unresponsive_destination_prob = 0;
  params.seed = seed;
  return params;
}

class EngineBehavior : public ::testing::Test {
 protected:
  void SetUp() override {
    world_ = std::make_unique<eval::World>(tiny_params());
    hooks_.on_signals = [this](std::int64_t, TimePoint,
                               std::vector<signals::StalenessSignal>&& s) {
      for (auto& signal : s) signals_.push_back(std::move(signal));
    };
    world_->run_until(world_->corpus_t0(), hooks_);
    world_->initialize_corpus();
  }

  void inject(routing::Event event) {
    auto impact = world_->control_plane().apply(event);
    for (bgp::BgpRecord& record : world_->feed().on_event(event, impact)) {
      world_->engine().on_bgp_record(record);
    }
    world_->ground_truth().on_impact(event, impact);
  }

  // Finds (pair, crossing, link) on a multihomed link.
  struct Target {
    tr::PairKey pair;
    topo::InterconnectId interconnect;
    topo::LinkId link;
  };
  std::optional<Target> find_target() {
    for (const tr::PairKey& pair : world_->ground_truth().pairs()) {
      const auto& path = world_->ground_truth().current(pair);
      for (const auto& crossing : path.crossings) {
        topo::LinkId link =
            world_->topology().interconnect_at(crossing.interconnect).link;
        if (world_->topology().link_interconnects(link).size() >= 2) {
          return Target{pair, crossing.interconnect, link};
        }
      }
    }
    return std::nullopt;
  }

  std::unique_ptr<eval::World> world_;
  eval::World::Hooks hooks_;
  std::vector<signals::StalenessSignal> signals_;
};

TEST_F(EngineBehavior, RefreshClearsStalenessAndGradesOutcome) {
  world_->run_until(world_->corpus_t0() + kSecondsPerDay, hooks_);
  auto target = find_target();
  ASSERT_TRUE(target.has_value());

  routing::Event down;
  down.kind = routing::EventKind::kInterconnectDown;
  down.time = world_->corpus_t0() + kSecondsPerDay;
  down.interconnect = target->interconnect;
  down.link = target->link;
  inject(down);
  world_->run_until(world_->corpus_t0() + 2 * kSecondsPerDay, hooks_);

  auto stale = world_->engine().stale_pairs();
  ASSERT_FALSE(stale.empty());
  tr::PairKey victim = stale.front();

  TimePoint now = world_->corpus_t0() + 2 * kSecondsPerDay;
  tr::Traceroute fresh = world_->issue_corpus_traceroute(victim, now);
  auto outcome = world_->engine().apply_refresh(
      world_->platform().probe(victim.probe), fresh);
  EXPECT_TRUE(outcome.was_flagged_stale);
  EXPECT_NE(world_->engine().freshness(victim), tr::Freshness::kStale);
  // The pair is re-registered and monitorable again.
  EXPECT_NE(world_->engine().processed_of(victim), nullptr);
}

TEST_F(EngineBehavior, PlannerPrefersFlaggedPairs) {
  world_->run_until(world_->corpus_t0() + kSecondsPerDay, hooks_);
  auto target = find_target();
  ASSERT_TRUE(target.has_value());
  routing::Event down;
  down.kind = routing::EventKind::kInterconnectDown;
  down.time = world_->corpus_t0() + kSecondsPerDay;
  down.interconnect = target->interconnect;
  down.link = target->link;
  inject(down);
  world_->run_until(world_->corpus_t0() + 2 * kSecondsPerDay, hooks_);

  auto stale = world_->engine().stale_pairs();
  ASSERT_FALSE(stale.empty());
  auto planned = world_->engine().plan_refreshes(
      static_cast<int>(stale.size()) + 100);
  ASSERT_FALSE(planned.empty());
  // Everything planned must be currently flagged.
  std::set<tr::PairKey> flagged(stale.begin(), stale.end());
  for (const tr::PairKey& pair : planned) {
    EXPECT_TRUE(flagged.contains(pair));
  }
  // No duplicates.
  std::set<tr::PairKey> unique(planned.begin(), planned.end());
  EXPECT_EQ(unique.size(), planned.size());
}

TEST_F(EngineBehavior, RevocationUnflagsAfterRevert) {
  world_->run_until(world_->corpus_t0() + kSecondsPerDay, hooks_);
  auto target = find_target();
  ASSERT_TRUE(target.has_value());

  TimePoint t_down = world_->corpus_t0() + kSecondsPerDay;
  routing::Event down;
  down.kind = routing::EventKind::kInterconnectDown;
  down.time = t_down;
  down.interconnect = target->interconnect;
  down.link = target->link;
  inject(down);
  world_->run_until(t_down + 6 * kSecondsPerHour, hooks_);
  auto stale_during = world_->engine().stale_pairs();
  ASSERT_FALSE(stale_during.empty());

  routing::Event up;
  up.kind = routing::EventKind::kInterconnectUp;
  up.time = t_down + 6 * kSecondsPerHour;
  up.interconnect = target->interconnect;
  up.link = target->link;
  inject(up);
  world_->run_until(t_down + 30 * kSecondsPerHour, hooks_);

  // §4.3.2: with the route back to its issue-time state, revocation must
  // return at least one of the flagged pairs to fresh without any refresh
  // measurement. (The restore itself fires *new* signals for other pairs —
  // a revert is a change — so the overall stale count may well grow.)
  bool any_revoked = false;
  for (const tr::PairKey& pair : stale_during) {
    if (world_->engine().freshness(pair) != tr::Freshness::kStale) {
      any_revoked = true;
      break;
    }
  }
  EXPECT_TRUE(any_revoked) << "no pair was revoked after the revert";
}

TEST_F(EngineBehavior, CooldownLimitsRepeatSignals) {
  world_->run_until(world_->corpus_t0() + kSecondsPerDay, hooks_);
  auto target = find_target();
  ASSERT_TRUE(target.has_value());
  routing::Event down;
  down.kind = routing::EventKind::kInterconnectDown;
  down.time = world_->corpus_t0() + kSecondsPerDay;
  down.interconnect = target->interconnect;
  down.link = target->link;
  inject(down);
  signals_.clear();
  world_->run_until(world_->corpus_t0() + 3 * kSecondsPerDay, hooks_);

  // The change persists for two days: no potential may fire more than a
  // handful of times (cooldown is 8 windows = 2 h).
  std::map<signals::PotentialId, int> per_potential;
  for (const auto& signal : signals_) ++per_potential[signal.potential];
  for (const auto& [potential, count] : per_potential) {
    EXPECT_LE(count, 2 * 24 / 2 + 2) << "potential " << potential;
  }
}

}  // namespace
}  // namespace rrr
