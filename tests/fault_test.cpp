// Tests for the fault-injection subsystem (fault/) and the feed-health
// quarantine tracker (signals/feed_health.h): plan spec round-trips,
// injector determinism and per-clause behaviour, and the
// healthy/suspect/dead/recovering state machine.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "fault/injector.h"
#include "fault/plan.h"
#include "signals/feed_health.h"

namespace rrr {
namespace {

bgp::BgpRecord make_record(bgp::VpId vp, std::int64_t t,
                           const char* prefix = "10.1.0.0/16",
                           bgp::RecordType type =
                               bgp::RecordType::kAnnouncement) {
  bgp::BgpRecord record;
  record.time = TimePoint(t);
  record.type = type;
  record.vp = vp;
  record.peer_asn = Asn(65000 + vp);
  record.peer_ip = *Ipv4::parse("192.0.2.1");
  record.collector = "rrc" + std::to_string(vp % 4);
  record.prefix = *Prefix::parse(prefix);
  if (type != bgp::RecordType::kWithdrawal) {
    record.as_path = {Asn(65000 + vp), Asn(3356), Asn(15169)};
  }
  return record;
}

tr::Traceroute make_trace(tr::ProbeId probe, std::int64_t t) {
  tr::Traceroute trace;
  trace.id = 7;
  trace.probe = probe;
  trace.src_ip = *Ipv4::parse("10.0.0.1");
  trace.dst_ip = *Ipv4::parse("10.9.0.1");
  trace.time = TimePoint(t);
  trace.reached = true;
  return trace;
}

constexpr std::int64_t kWindow = 900;

// --- FaultPlan ---

TEST(FaultPlan, DefaultPlanIsInert) {
  fault::FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  EXPECT_EQ(plan.spec(), "");
  auto parsed = fault::FaultPlan::parse("");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->enabled());
}

TEST(FaultPlan, SpecRoundTrips) {
  fault::FaultPlan plan;
  plan.collector_blackout_fraction = 0.3;
  plan.vp_blackout_fraction = 0.1;
  plan.blackout_start_window = 96;
  plan.blackout_windows = 48;
  plan.session_reset_replay = true;
  plan.drop_rate = 0.05;
  plan.trace_drop_rate = 0.2;
  plan.duplicate_rate = 0.15;
  plan.duplicate_burst_max = 5;
  plan.reorder_rate = 0.25;
  plan.reorder_max_seconds = 120;
  plan.corrupt_rate = 0.01;
  plan.seed = 77;
  ASSERT_TRUE(plan.enabled());

  auto parsed = fault::FaultPlan::parse(plan.spec());
  ASSERT_TRUE(parsed.has_value()) << plan.spec();
  EXPECT_EQ(parsed->spec(), plan.spec());
  EXPECT_DOUBLE_EQ(parsed->collector_blackout_fraction, 0.3);
  EXPECT_EQ(parsed->blackout_start_window, 96);
  EXPECT_EQ(parsed->blackout_windows, 48);
  EXPECT_TRUE(parsed->session_reset_replay);
  EXPECT_EQ(parsed->duplicate_burst_max, 5);
  EXPECT_EQ(parsed->reorder_max_seconds, 120);
  EXPECT_EQ(parsed->seed, 77u);
}

TEST(FaultPlan, ParseRejectsGarbage) {
  EXPECT_FALSE(fault::FaultPlan::parse("unknown_key=1").has_value());
  EXPECT_FALSE(fault::FaultPlan::parse("drop=1.5").has_value());
  EXPECT_FALSE(fault::FaultPlan::parse("drop=-0.1").has_value());
  EXPECT_FALSE(fault::FaultPlan::parse("drop").has_value());
  EXPECT_FALSE(fault::FaultPlan::parse("drop=abc").has_value());
}

TEST(FaultPlan, BlackoutWithoutWindowsIsInert) {
  fault::FaultPlan plan;
  plan.collector_blackout_fraction = 1.0;
  EXPECT_FALSE(plan.enabled());  // blackout_windows == 0
  plan.blackout_windows = 4;
  EXPECT_TRUE(plan.enabled());
}

// --- FaultInjector ---

TEST(FaultInjector, InertPlanPassesRecordsThrough) {
  fault::FaultInjector injector(fault::FaultPlan{}, TimePoint(0), kWindow);
  bgp::BgpRecord record = make_record(1, 100);
  auto out = injector.on_bgp_record(record);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].prefix.to_string(), record.prefix.to_string());
  EXPECT_EQ(out[0].time, record.time);
  auto trace = injector.on_public_trace(make_trace(9, 100));
  EXPECT_TRUE(trace.has_value());
}

TEST(FaultInjector, BlackoutDropsOnlyInsideItsWindows) {
  fault::FaultPlan plan;
  plan.collector_blackout_fraction = 1.0;  // every collector
  plan.blackout_start_window = 2;
  plan.blackout_windows = 2;  // windows [2, 4)
  fault::FaultInjector injector(plan, TimePoint(0), kWindow);

  EXPECT_EQ(injector.on_bgp_record(make_record(1, 1 * kWindow)).size(), 1u);
  EXPECT_EQ(injector.on_bgp_record(make_record(1, 2 * kWindow)).size(), 0u);
  EXPECT_EQ(injector.on_bgp_record(make_record(1, 3 * kWindow)).size(), 0u);
  EXPECT_EQ(injector.on_bgp_record(make_record(1, 4 * kWindow)).size(), 1u);
  EXPECT_EQ(injector.stats().bgp_blackout_dropped, 2);
}

TEST(FaultInjector, VpBlackoutAlsoSilencesProbes) {
  fault::FaultPlan plan;
  plan.vp_blackout_fraction = 1.0;
  plan.blackout_start_window = 0;
  plan.blackout_windows = 4;
  fault::FaultInjector injector(plan, TimePoint(0), kWindow);
  EXPECT_FALSE(injector.on_public_trace(make_trace(3, kWindow)).has_value());
  EXPECT_TRUE(
      injector.on_public_trace(make_trace(3, 5 * kWindow)).has_value());
  EXPECT_EQ(injector.stats().trace_blackout_dropped, 1);
}

TEST(FaultInjector, DropRateOneDropsEverything) {
  fault::FaultPlan plan;
  plan.drop_rate = 1.0;
  plan.trace_drop_rate = 1.0;
  fault::FaultInjector injector(plan, TimePoint(0), kWindow);
  for (int i = 0; i < 16; ++i) {
    EXPECT_TRUE(injector.on_bgp_record(make_record(1, i)).empty());
    EXPECT_FALSE(injector.on_public_trace(make_trace(2, i)).has_value());
  }
  EXPECT_EQ(injector.stats().bgp_dropped, 16);
  EXPECT_EQ(injector.stats().trace_dropped, 16);
}

TEST(FaultInjector, DuplicateBurstsAreBounded) {
  fault::FaultPlan plan;
  plan.duplicate_rate = 1.0;
  plan.duplicate_burst_max = 3;
  fault::FaultInjector injector(plan, TimePoint(0), kWindow);
  for (int i = 0; i < 32; ++i) {
    auto out = injector.on_bgp_record(make_record(1, i));
    ASSERT_GE(out.size(), 2u);  // original + at least one copy
    ASSERT_LE(out.size(), 4u);  // original + at most burst_max
    for (const auto& copy : out) EXPECT_EQ(copy.time, TimePoint(i));
  }
  EXPECT_GT(injector.stats().bgp_duplicated, 0);
}

TEST(FaultInjector, ReorderJitterIsBoundedAndNonNegative) {
  fault::FaultPlan plan;
  plan.reorder_rate = 1.0;
  plan.reorder_max_seconds = 50;
  fault::FaultInjector injector(plan, TimePoint(0), kWindow);
  for (int i = 0; i < 64; ++i) {
    std::int64_t t = 10 + i;
    auto out = injector.on_bgp_record(make_record(1, t));
    ASSERT_EQ(out.size(), 1u);
    EXPECT_GE(out[0].time.seconds(), 0);
    EXPECT_LE(std::abs(out[0].time.seconds() - t), 50);
  }
  EXPECT_GT(injector.stats().bgp_reordered, 0);
}

TEST(FaultInjector, CorruptionEitherDropsOrMutatesButNeverCrashes) {
  fault::FaultPlan plan;
  plan.corrupt_rate = 1.0;
  fault::FaultInjector injector(plan, TimePoint(0), kWindow);
  std::int64_t survived = 0;
  for (int i = 0; i < 256; ++i) {
    survived += static_cast<std::int64_t>(
        injector.on_bgp_record(make_record(1, 1000 + i)).size());
  }
  EXPECT_EQ(survived, injector.stats().bgp_corrupted);
  EXPECT_EQ(256, injector.stats().bgp_corrupted +
                     injector.stats().bgp_corrupt_dropped);
  // A corruption pass that never kills a line (or never spares one) is not
  // exercising both paths.
  EXPECT_GT(injector.stats().bgp_corrupt_dropped, 0);
  EXPECT_GT(injector.stats().bgp_corrupted, 0);
}

TEST(FaultInjector, SessionResetReplaysLastKnownRoutes) {
  fault::FaultPlan plan;
  plan.collector_blackout_fraction = 1.0;
  plan.blackout_start_window = 2;
  plan.blackout_windows = 2;
  plan.session_reset_replay = true;
  fault::FaultInjector injector(plan, TimePoint(0), kWindow);

  // Two standing routes learned before the blackout, one withdrawn.
  injector.on_bgp_record(make_record(1, 10, "10.1.0.0/16"));
  injector.on_bgp_record(make_record(1, 20, "10.2.0.0/16"));
  injector.on_bgp_record(make_record(1, 30, "10.3.0.0/16"));
  injector.on_bgp_record(
      make_record(1, 40, "10.3.0.0/16", bgp::RecordType::kWithdrawal));
  // Silence during the blackout.
  EXPECT_TRUE(injector.on_bgp_record(make_record(1, 2 * kWindow)).empty());

  // First post-blackout record: the two surviving routes replay ahead of it.
  auto out = injector.on_bgp_record(
      make_record(1, 4 * kWindow + 5, "10.9.0.0/16"));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].prefix.to_string(), "10.1.0.0/16");
  EXPECT_EQ(out[1].prefix.to_string(), "10.2.0.0/16");
  EXPECT_EQ(out[2].prefix.to_string(), "10.9.0.0/16");
  for (const auto& record : out) {
    EXPECT_EQ(record.time, TimePoint(4 * kWindow + 5));
  }
  EXPECT_EQ(injector.stats().bgp_replayed, 2);

  // The synchronized replay fires exactly once, not on every later record.
  EXPECT_EQ(
      injector.on_bgp_record(make_record(1, 4 * kWindow + 9)).size(), 1u);
}

TEST(FaultInjector, PerStreamDrawsAreInterleaveInvariant) {
  fault::FaultPlan plan;
  plan.drop_rate = 0.3;
  plan.duplicate_rate = 0.3;
  plan.reorder_rate = 0.3;
  plan.reorder_max_seconds = 60;
  plan.seed = 5;

  // Same records, radically different cross-stream interleavings.
  auto run = [&](bool grouped) {
    fault::FaultInjector injector(plan, TimePoint(0), kWindow);
    std::vector<std::vector<bgp::BgpRecord>> out(4);
    if (grouped) {
      for (bgp::VpId vp = 0; vp < 4; ++vp) {
        for (int i = 0; i < 32; ++i) {
          auto batch = injector.on_bgp_record(make_record(vp, 100 + i));
          out[vp].insert(out[vp].end(), batch.begin(), batch.end());
        }
      }
    } else {
      for (int i = 0; i < 32; ++i) {
        for (bgp::VpId vp = 0; vp < 4; ++vp) {
          auto batch = injector.on_bgp_record(make_record(vp, 100 + i));
          out[vp].insert(out[vp].end(), batch.begin(), batch.end());
        }
      }
    }
    return out;
  };
  auto grouped = run(true);
  auto interleaved = run(false);
  for (bgp::VpId vp = 0; vp < 4; ++vp) {
    ASSERT_EQ(grouped[vp].size(), interleaved[vp].size()) << "vp " << vp;
    for (std::size_t i = 0; i < grouped[vp].size(); ++i) {
      EXPECT_EQ(grouped[vp][i].time, interleaved[vp][i].time);
      EXPECT_EQ(grouped[vp][i].prefix.to_string(),
                interleaved[vp][i].prefix.to_string());
    }
  }
}

// --- FeedHealthTracker ---

signals::FeedHealthParams tight_params() {
  signals::FeedHealthParams params;
  params.enabled = true;
  params.baseline_alpha = 0.5;
  params.gap_fraction = 0.5;
  params.min_baseline = 0.5;
  params.judge_mass = 1.0;  // horizon = 1 window once baseline >= 1
  params.max_horizon_windows = 4;
  params.warmup_windows = 2;
  params.suspect_windows = 2;
  params.recover_windows = 2;
  params.degraded_fraction = 0.3;
  return params;
}

void feed_n(signals::FeedHealthTracker& tracker, bgp::VpId vp,
            std::int64_t window, int n) {
  // One synthetic collector per vp keeps each vp on its own BGP stream, so
  // these tests exercise the state machine stream by stream.
  const std::string collector = "c" + std::to_string(vp);
  for (int i = 0; i < n; ++i) tracker.count_bgp(vp, collector, window);
}

TEST(FeedHealth, UnknownStreamsAreHealthy) {
  signals::FeedHealthTracker tracker(tight_params());
  EXPECT_EQ(tracker.bgp_state(42), signals::FeedState::kHealthy);
  EXPECT_FALSE(tracker.bgp_quarantined(42));
  EXPECT_FALSE(tracker.trace_quarantined(42));
  EXPECT_FALSE(tracker.bgp_degraded());
}

TEST(FeedHealth, OutageWalksTheStateMachine) {
  signals::FeedHealthTracker tracker(tight_params());
  // Gap judgement is relative to feed activity: a heartbeat stream keeps
  // chattering throughout so stream 1's silence reads as an outage, not a
  // feed-wide lull.
  std::int64_t w = 0;
  for (; w < 5; ++w) {
    feed_n(tracker, 1, w, 4);
    feed_n(tracker, 99, w, 4);
    tracker.close_window(w);
  }
  EXPECT_EQ(tracker.bgp_state(1), signals::FeedState::kHealthy);

  // Silence: one gap window -> suspect, two -> dead (quarantined).
  feed_n(tracker, 99, w, 4);
  tracker.close_window(w++);
  EXPECT_EQ(tracker.bgp_state(1), signals::FeedState::kSuspect);
  EXPECT_FALSE(tracker.bgp_quarantined(1));
  feed_n(tracker, 99, w, 4);
  tracker.close_window(w++);
  EXPECT_EQ(tracker.bgp_state(1), signals::FeedState::kDead);
  EXPECT_TRUE(tracker.bgp_quarantined(1));

  // Delivery resumes: recovering (still quarantined), then healthy.
  feed_n(tracker, 1, w, 4);
  feed_n(tracker, 99, w, 4);
  tracker.close_window(w++);
  EXPECT_EQ(tracker.bgp_state(1), signals::FeedState::kRecovering);
  EXPECT_TRUE(tracker.bgp_quarantined(1));
  feed_n(tracker, 1, w, 4);
  feed_n(tracker, 99, w, 4);
  tracker.close_window(w++);
  EXPECT_EQ(tracker.bgp_state(1), signals::FeedState::kHealthy);
  EXPECT_FALSE(tracker.bgp_quarantined(1));
}

TEST(FeedHealth, FeedWideLullIsNotAnOutage) {
  signals::FeedHealthTracker tracker(tight_params());
  std::int64_t w = 0;
  for (; w < 5; ++w) {
    feed_n(tracker, 1, w, 4);
    feed_n(tracker, 2, w, 4);
    tracker.close_window(w);
  }
  EXPECT_EQ(tracker.bgp_state(1), signals::FeedState::kHealthy);
  // EVERY stream goes silent at once — an event-driven lull, not an
  // outage. The activity ratio collapses and nobody is quarantined.
  for (int i = 0; i < 6; ++i) tracker.close_window(w++);
  EXPECT_EQ(tracker.bgp_state(1), signals::FeedState::kHealthy);
  EXPECT_EQ(tracker.bgp_state(2), signals::FeedState::kHealthy);
  EXPECT_FALSE(tracker.bgp_degraded());
}

TEST(FeedHealth, BaselineDoesNotDecayDuringOutage) {
  signals::FeedHealthTracker tracker(tight_params());
  std::int64_t w = 0;
  for (; w < 6; ++w) {
    feed_n(tracker, 1, w, 4);
    feed_n(tracker, 99, w, 4);
    tracker.close_window(w);
  }
  // A long outage (heartbeat still chattering), then full-rate delivery:
  // if the outage had decayed the baseline toward zero, the resumed rate
  // would look like a flood and a near-silent stream would look healthy.
  // Instead, after recovery a trickle window still reads as a gap.
  for (int i = 0; i < 6; ++i) {
    feed_n(tracker, 99, w, 4);
    tracker.close_window(w++);
  }
  EXPECT_TRUE(tracker.bgp_quarantined(1));
  for (int i = 0; i < 2; ++i) {
    feed_n(tracker, 1, w, 4);
    feed_n(tracker, 99, w, 4);
    tracker.close_window(w++);
  }
  EXPECT_EQ(tracker.bgp_state(1), signals::FeedState::kHealthy);
  // 1 < gap_fraction(0.5) * baseline(~4) * activity_ratio(5/8).
  feed_n(tracker, 1, w, 1);
  feed_n(tracker, 99, w, 4);
  tracker.close_window(w++);
  EXPECT_EQ(tracker.bgp_state(1), signals::FeedState::kSuspect);
}

TEST(FeedHealth, SparseStreamsAreJudgedOverAStretchedHorizon) {
  signals::FeedHealthParams params = tight_params();
  params.baseline_alpha = 0.2;  // baseline learns ~alpha per horizon
  params.gap_fraction = 0.25;
  params.judge_mass = 2.0;
  params.max_horizon_windows = 8;
  params.min_baseline = 0.05;
  signals::FeedHealthTracker tracker(params);
  // ~0.5 records/window: one record every other window. A dense heartbeat
  // stream keeps the feed's activity ratio near 1 throughout.
  std::int64_t w = 0;
  for (; w < 20; ++w) {
    if (w % 2 == 0) feed_n(tracker, 1, w, 1);
    feed_n(tracker, 99, w, 4);
    tracker.close_window(w);
  }
  // Per-window judgement would flag every odd window as a gap; the
  // stretched horizon (>= 4 windows at this baseline) keeps it healthy.
  EXPECT_EQ(tracker.bgp_state(1), signals::FeedState::kHealthy);
  // A real outage still lands: total silence for the full horizon while
  // the heartbeat keeps delivering.
  for (int i = 0; i < 12; ++i) {
    feed_n(tracker, 99, w, 4);
    tracker.close_window(w++);
  }
  EXPECT_TRUE(tracker.bgp_quarantined(1));
}

TEST(FeedHealth, DegradedWhenEnoughJudgedStreamsQuarantine) {
  signals::FeedHealthTracker tracker(tight_params());
  std::int64_t w = 0;
  for (; w < 5; ++w) {
    feed_n(tracker, 1, w, 4);
    feed_n(tracker, 2, w, 4);
    tracker.close_window(w);
  }
  EXPECT_FALSE(tracker.bgp_degraded());
  // Stream 2 goes dark; stream 1 keeps delivering.
  for (int i = 0; i < 3; ++i) {
    feed_n(tracker, 1, w, 4);
    tracker.close_window(w++);
  }
  EXPECT_FALSE(tracker.bgp_quarantined(1));
  EXPECT_TRUE(tracker.bgp_quarantined(2));
  EXPECT_TRUE(tracker.bgp_degraded());  // 1/2 judged >= 0.3
  EXPECT_DOUBLE_EQ(tracker.bgp_quarantined_fraction(), 0.5);
  // The trace feed is independent.
  EXPECT_FALSE(tracker.trace_degraded());
}

}  // namespace
}  // namespace rrr
