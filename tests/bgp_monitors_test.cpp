// Focused unit tests for the BGP-based monitors (§4.1.2-§4.1.4) against a
// hand-built table view: the signal logic is exercised without the
// simulator, so every suppression rule has a deterministic witness.
#include <gtest/gtest.h>

#include "signals/aspath_monitor.h"
#include "signals/burst_monitor.h"
#include "signals/community_monitor.h"

namespace rrr::signals {
namespace {

constexpr std::int64_t kWatchWindow = 100;

class BgpMonitorFixture : public ::testing::Test {
 protected:
  BgpMonitorFixture() {
    // Four VPs, all with routes to the destination 10.1.0.1 through the
    // suffix {20, 30, 40}; VPs 0-2 enter at AS 20 (matching the corpus
    // traceroute), VP 3 first intersects deeper at AS 30.
    for (bgp::VpId vp = 0; vp < 4; ++vp) {
      bgp::VantagePoint vantage;
      vantage.id = vp;
      vantage.asn = Asn(900 + vp);
      vps_.push_back(vantage);
    }
    context_.table = &table_;
    context_.vps = &vps_;

    install(0, {Asn(900), Asn(20), Asn(30), Asn(40)},
            {Community(Asn(20), 51007)});
    install(1, {Asn(901), Asn(20), Asn(30), Asn(40)},
            {Community(Asn(20), 51007)});
    install(2, {Asn(902), Asn(20), Asn(30), Asn(40)},
            {Community(Asn(20), 51007)});
    install(3, {Asn(903), Asn(30), Asn(40)}, {});

    // The corpus traceroute's processed view: AS path {10, 20, 30, 40}.
    view_.key = tr::PairKey{7, *Ipv4::parse("10.1.0.1")};
    view_.window = kWatchWindow;
    view_.processed.as_path = {Asn(10), Asn(20), Asn(30), Asn(40)};
  }

  void install(bgp::VpId vp, AsPath path, CommunitySet communities,
               std::int64_t t = 0) {
    bgp::BgpRecord record;
    record.time = TimePoint(t);
    record.type = bgp::RecordType::kAnnouncement;
    record.vp = vp;
    record.prefix = *Prefix::parse("10.1.0.0/16");
    record.as_path = std::move(path);
    record.communities = std::move(communities);
    table_.apply(record);
  }

  // Builds a dispatched update record (not yet applied to the table).
  bgp::BgpRecord update(bgp::VpId vp, AsPath path, CommunitySet communities = {},
                        std::int64_t t = 0) {
    bgp::BgpRecord record;
    record.time = TimePoint(t);
    record.type = bgp::RecordType::kAnnouncement;
    record.vp = vp;
    record.prefix = *Prefix::parse("10.1.0.0/16");
    record.as_path = std::move(path);
    record.communities = std::move(communities);
    return record;
  }

  DispatchedRecord dispatch(const bgp::BgpRecord& record) {
    DispatchedRecord dispatched;
    dispatched.record = &record;
    dispatched.path = record.as_path;
    const bgp::VpRoute* standing =
        table_.route(record.vp, record.prefix.network());
    dispatched.duplicate = standing != nullptr &&
                           standing->path == record.as_path &&
                           standing->communities == record.communities;
    return dispatched;
  }

  // The monitors read through BgpContext's epoch table; apply() keeps both
  // buffers in sync so installs are immediately visible without a flip.
  bgp::EpochTableView table_;
  std::vector<bgp::VantagePoint> vps_;
  BgpContext context_;
  CorpusView view_;
  PotentialIndex index_;
};

TEST_F(BgpMonitorFixture, AsPathMonitorPinsV0AndDetectsSuffixShift) {
  AsPathMonitor monitor(context_);
  monitor.watch(view_, index_);
  ASSERT_GT(index_.relations_of(view_.key).size(), 0u);

  // Keep the ratio steady for enough windows, then shift every VP away
  // from the suffix at AS 20.
  std::int64_t w = kWatchWindow + 1;
  for (; w < kWatchWindow + 10; ++w) {
    auto none = monitor.close_window(w, TimePoint(w * 900));
    EXPECT_TRUE(none.empty());
  }
  bool flagged = false;
  for (int burst = 0; burst < 6 && !flagged; ++burst, ++w) {
    for (bgp::VpId vp : {0u, 1u, 2u}) {
      bgp::BgpRecord changed =
          update(vp, {Asn(900 + vp), Asn(20), Asn(35), Asn(40)});
      DispatchedRecord d = dispatch(changed);
      monitor.on_record(d, w);
      table_.apply(changed);
    }
    for (const auto& signal : monitor.close_window(w, TimePoint(w * 900))) {
      EXPECT_EQ(signal.technique, Technique::kBgpAsPath);
      EXPECT_EQ(signal.pair, view_.key);
      flagged = true;
    }
  }
  EXPECT_TRUE(flagged);
}

TEST_F(BgpMonitorFixture, CommunityChangeSamePathSignals) {
  CommunityReputation reputation;
  CommunityMonitor monitor(context_, reputation);
  monitor.watch(view_, index_);

  std::int64_t w = kWatchWindow + 1;
  bgp::BgpRecord changed = update(0, {Asn(900), Asn(20), Asn(30), Asn(40)},
                                  {Community(Asn(20), 51013)});
  DispatchedRecord d = dispatch(changed);
  EXPECT_FALSE(d.duplicate);
  monitor.on_record(d, w);
  auto signals = monitor.close_window(w, TimePoint(w * 900));
  ASSERT_EQ(signals.size(), 1u);
  EXPECT_EQ(signals[0].technique, Technique::kBgpCommunity);
  EXPECT_EQ(signals[0].community.definer(), Asn(20));
}

TEST_F(BgpMonitorFixture, CommunityVanishingWithPathChangeIsSuppressed) {
  CommunityReputation reputation;
  CommunityMonitor monitor(context_, reputation);
  monitor.watch(view_, index_);

  // VP 0 reroutes upstream: AS 20's community disappears because the new
  // chain strips it — not evidence of a border change at AS 20. The new
  // path still overlaps the suffix at 20.
  std::int64_t w = kWatchWindow + 1;
  bgp::BgpRecord rerouted =
      update(0, {Asn(900), Asn(55), Asn(20), Asn(30), Asn(40)}, {});
  DispatchedRecord d = dispatch(rerouted);
  monitor.on_record(d, w);
  EXPECT_TRUE(monitor.close_window(w, TimePoint(w * 900)).empty());
}

TEST_F(BgpMonitorFixture, CommunityKnownElsewhereIsNotNews) {
  CommunityReputation reputation;
  CommunityMonitor monitor(context_, reputation);
  // VP 1 already carries the "new" community before the watch.
  install(1, {Asn(901), Asn(20), Asn(30), Asn(40)},
          {Community(Asn(20), 51013)});
  monitor.watch(view_, index_);

  std::int64_t w = kWatchWindow + 1;
  bgp::BgpRecord changed =
      update(0, {Asn(900), Asn(20), Asn(30), Asn(40)},
             {Community(Asn(20), 51007), Community(Asn(20), 51013)});
  DispatchedRecord d = dispatch(changed);
  monitor.on_record(d, w);
  // The addition of 20:51013 is suppressed (another VP already shows it)
  // and nothing was removed, so no signal fires.
  EXPECT_TRUE(monitor.close_window(w, TimePoint(w * 900)).empty());
}

TEST_F(BgpMonitorFixture, BurstQuorumGatesSignals) {
  BurstMonitor monitor(context_);
  monitor.watch(view_, index_);
  ASSERT_GT(monitor.entry_count(), 0u);

  // One duplicate from a single VP: never a burst.
  std::int64_t w = kWatchWindow + 30;
  bgp::BgpRecord dup0 = update(0, {Asn(900), Asn(20), Asn(30), Asn(40)},
                               {Community(Asn(20), 51007)});
  DispatchedRecord d0 = dispatch(dup0);
  ASSERT_TRUE(d0.duplicate);
  monitor.on_record(d0, w);
  EXPECT_TRUE(monitor.close_window(w, TimePoint(w * 900)).empty());

  // Contemporaneous duplicates from the whole pinned set: a burst.
  ++w;
  std::vector<bgp::BgpRecord> dups;
  for (bgp::VpId vp : {0u, 1u, 2u}) {
    dups.push_back(update(vp, {Asn(900 + vp), Asn(20), Asn(30), Asn(40)},
                          {Community(Asn(20), 51007)}));
  }
  for (const auto& record : dups) {
    DispatchedRecord d = dispatch(record);
    ASSERT_TRUE(d.duplicate);
    monitor.on_record(d, w);
  }
  auto signals = monitor.close_window(w, TimePoint(w * 900));
  ASSERT_FALSE(signals.empty());
  for (const auto& signal : signals) {
    EXPECT_EQ(signal.technique, Technique::kBgpBurst);
    EXPECT_EQ(signal.pair, view_.key);
  }
}

TEST_F(BgpMonitorFixture, UnwatchStopsSignals) {
  CommunityReputation reputation;
  CommunityMonitor monitor(context_, reputation);
  monitor.watch(view_, index_);
  monitor.unwatch(view_.key);
  index_.unrelate_pair(view_.key);

  std::int64_t w = kWatchWindow + 1;
  bgp::BgpRecord changed = update(0, {Asn(900), Asn(20), Asn(30), Asn(40)},
                                  {Community(Asn(20), 51013)});
  DispatchedRecord d = dispatch(changed);
  monitor.on_record(d, w);
  EXPECT_TRUE(monitor.close_window(w, TimePoint(w * 900)).empty());
  EXPECT_TRUE(index_.relations_of(view_.key).empty());
}

}  // namespace
}  // namespace rrr::signals
