// Unit tests for the outlier detectors and series helpers (src/detect).
#include <gtest/gtest.h>

#include "detect/detector.h"
#include "detect/series.h"

namespace rrr::detect {
namespace {

TEST(ModifiedZScore, FlagsLevelShiftImmediately) {
  ModifiedZScoreDetector detector;
  for (int i = 0; i < 30; ++i) {
    Judgement j = detector.update(0.8 + 0.01 * (i % 3));
    EXPECT_FALSE(j.outlier) << "window " << i;
  }
  Judgement j = detector.update(0.1);
  EXPECT_TRUE(j.outlier);
  EXPECT_LT(j.score, -3.5);
}

TEST(ModifiedZScore, SilentUntilMinHistory) {
  ZScoreParams params;
  params.min_history = 20;
  ModifiedZScoreDetector detector(params);
  for (int i = 0; i < 19; ++i) {
    EXPECT_FALSE(detector.update(1.0).outlier);
  }
  // Even a wild value cannot be judged before 20 observations exist.
  EXPECT_FALSE(detector.update(100.0).outlier);
}

TEST(ModifiedZScore, StationarityMaintenanceKeepsFlaggingPersistentChange) {
  ModifiedZScoreDetector detector;
  for (int i = 0; i < 30; ++i) detector.update(1.0);
  // A persistent shift: every post-change window keeps flagging because
  // flagged values are excluded from history (§4.1.2).
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(detector.update(0.2).outlier) << "post-change window " << i;
  }
}

TEST(ModifiedZScore, AblatedStationarityAbsorbsTheShift) {
  ZScoreParams params;
  params.drop_outliers_from_history = false;
  params.max_history = 30;
  ModifiedZScoreDetector detector(params);
  for (int i = 0; i < 30; ++i) detector.update(1.0);
  int flagged = 0;
  for (int i = 0; i < 40; ++i) {
    if (detector.update(0.2).outlier) ++flagged;
  }
  // The level shift becomes the new normal: flagging stops long before 40.
  EXPECT_LT(flagged, 25);
}

TEST(ModifiedZScore, ConstantHistoryTreatsAnyDeviationAsOutlier) {
  ModifiedZScoreDetector detector;
  for (int i = 0; i < 25; ++i) detector.update(1.0);
  EXPECT_TRUE(detector.update(0.5).outlier);
  EXPECT_FALSE(detector.update(1.0).outlier);
}

TEST(Bitmap, FlagsBurstAfterQuietBaseline) {
  BitmapDetector detector;
  bool flagged = false;
  for (int i = 0; i < 40; ++i) detector.update(0.0);
  for (int i = 0; i < 6; ++i) {
    if (detector.update(5.0).outlier) flagged = true;
  }
  EXPECT_TRUE(flagged);
}

TEST(Bitmap, ToleratesStationaryNoise) {
  BitmapDetector detector;
  // Alternating small values: periodic, stationary.
  int flagged = 0;
  for (int i = 0; i < 200; ++i) {
    if (detector.update(i % 2 == 0 ? 0.48 : 0.52).outlier) ++flagged;
  }
  EXPECT_LE(flagged, 4);
}

TEST(Bitmap, BackfillKeepsThresholdCalibrated) {
  BitmapDetector detector;
  detector.backfill(1.0, 30);
  // After a long constant stretch, a level shift is detected within the
  // lead window.
  bool flagged = false;
  for (int i = 0; i < 8; ++i) {
    if (detector.update(0.0).outlier) flagged = true;
  }
  EXPECT_TRUE(flagged);
}

TEST(LazySeries, CarryForwardFillsGaps) {
  LazySeries series(std::make_unique<ModifiedZScoreDetector>(),
                    GapPolicy::kCarryLast);
  series.feed(0, 1.0);
  // A judgement 50 windows later sees 49 carried 1.0s in history.
  Judgement j = series.feed(50, 0.0);
  EXPECT_TRUE(j.outlier);
}

TEST(LazySeries, MissingPolicySkipsGaps) {
  LazySeries series(std::make_unique<ModifiedZScoreDetector>(),
                    GapPolicy::kMissing);
  series.feed(0, 1.0);
  Judgement j = series.feed(50, 0.0);
  // Only 1 observation in history: cannot be an outlier yet.
  EXPECT_FALSE(j.outlier);
  EXPECT_EQ(series.history_size(), 2u);
}

TEST(LazySeries, ZeroPolicyFillsZeroes) {
  LazySeries series(std::make_unique<ModifiedZScoreDetector>(),
                    GapPolicy::kZero);
  series.feed(0, 0.0);
  Judgement j = series.feed(40, 7.0);
  EXPECT_TRUE(j.outlier);
}

TEST(LazySeries, SeedArmsTheDetector) {
  LazySeries series(std::make_unique<ModifiedZScoreDetector>(),
                    GapPolicy::kCarryLast);
  series.seed(100, 1.0, 24);
  Judgement j = series.feed(101, 0.0);
  EXPECT_TRUE(j.outlier);
}

TEST(LazySeries, IgnoresOutOfOrderWindows) {
  LazySeries series(std::make_unique<ModifiedZScoreDetector>(),
                    GapPolicy::kCarryLast);
  series.feed(10, 1.0);
  Judgement j = series.feed(10, 0.0);  // duplicate window
  EXPECT_FALSE(j.outlier);
  EXPECT_EQ(series.last_value(), 1.0);
}

class AdaptiveRatioTest : public ::testing::Test {
 protected:
  AdaptiveRatioSeries make(std::int64_t max_mult = 96) {
    ModifiedZScoreDetector prototype;
    return AdaptiveRatioSeries(prototype, max_mult);
  }
};

TEST_F(AdaptiveRatioTest, ArmsAfterTwentyConsecutiveWindows) {
  AdaptiveRatioSeries series = make();
  std::size_t emitted = 0;
  for (std::int64_t w = 0; w < 30; ++w) {
    series.add(w, 8, 10);
    emitted += series.close_through(w + 1).size();
  }
  EXPECT_TRUE(series.armed());
  EXPECT_EQ(series.multiplier(), 1);
  // Windows 0..19 arm the series; 20..29 emit judgements as they close.
  EXPECT_GE(emitted, 9u);
}

TEST_F(AdaptiveRatioTest, EscalatesWindowOnMissingData) {
  AdaptiveRatioSeries series = make();
  // Data only every other base window: multiplier must grow to >= 2.
  for (std::int64_t w = 0; w < 120; w += 2) {
    series.add(w, 1, 1);
    series.close_through(w + 1);
  }
  EXPECT_GE(series.multiplier(), 2);
}

TEST_F(AdaptiveRatioTest, DetectsRatioDropOnceArmed) {
  AdaptiveRatioSeries series = make();
  bool outlier_seen = false;
  for (std::int64_t w = 0; w < 40; ++w) {
    series.add(w, 9, 10);
    series.close_through(w + 1);
  }
  ASSERT_TRUE(series.armed());
  for (std::int64_t w = 40; w < 44; ++w) {
    series.add(w, 0, 10);
    for (const ClosedRatioWindow& closed : series.close_through(w + 1)) {
      if (closed.judgement.outlier && closed.judgement.score < 0) {
        outlier_seen = true;
      }
    }
  }
  EXPECT_TRUE(outlier_seen);
}

TEST_F(AdaptiveRatioTest, MissingWindowsAfterArmingAreSkipped) {
  AdaptiveRatioSeries series = make();
  for (std::int64_t w = 0; w < 25; ++w) {
    series.add(w, 1, 1);
    series.close_through(w + 1);
  }
  ASSERT_TRUE(series.armed());
  // A long silent stretch must not unarm or emit.
  auto closed = series.close_through(60);
  EXPECT_TRUE(closed.empty());
  EXPECT_TRUE(series.armed());
  series.add(60, 1, 1);
  auto after = series.close_through(62);
  ASSERT_EQ(after.size(), 1u);
  EXPECT_FALSE(after[0].judgement.outlier);
}

TEST_F(AdaptiveRatioTest, DormantAtMaxMultiplierWithoutData) {
  AdaptiveRatioSeries series = make(4);
  series.add(0, 1, 1);
  // Escalation proceeds one step per close call; a data-free series caps
  // its multiplier and eventually goes dormant.
  for (std::int64_t t = 1; t < 500; ++t) series.close_through(t);
  EXPECT_TRUE(series.dormant());
  EXPECT_EQ(series.multiplier(), 4);
}

TEST_F(AdaptiveRatioTest, ReportsIntersectCounts) {
  AdaptiveRatioSeries series = make();
  for (std::int64_t w = 0; w < 25; ++w) {
    series.add(w, 3, 7);
    auto closed = series.close_through(w + 1);
    for (const auto& c : closed) {
      EXPECT_EQ(c.intersect, 7);
      EXPECT_NEAR(c.ratio, 3.0 / 7.0, 1e-12);
      EXPECT_EQ(c.multiplier, 1);
    }
  }
}

}  // namespace
}  // namespace rrr::detect
