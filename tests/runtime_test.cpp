// Unit tests for the parallel runtime (src/runtime): thread-pool basics,
// parallel_for / parallel_map semantics, exception propagation, and nested
// parallel sections.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "runtime/parallel.h"
#include "runtime/thread_pool.h"

namespace rrr::runtime {
namespace {

TEST(ThreadPool, EmptyPoolRunsTasksInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1);
  std::thread::id submitter = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.submit([&] { ran_on = std::this_thread::get_id(); });
  EXPECT_EQ(ran_on, submitter);
  EXPECT_EQ(pool.queued(), 0u);
}

TEST(ThreadPool, ClampsNonPositiveThreadCounts) {
  EXPECT_EQ(ThreadPool(0).thread_count(), 1);
  EXPECT_EQ(ThreadPool(-3).thread_count(), 1);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { counter.fetch_add(1); });
  }
  // Drain from the submitting thread too; workers race us for the rest.
  while (pool.run_one()) {
  }
  while (counter.load() < 100) std::this_thread::yield();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, NestedSubmitDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> inner_done{0};
  std::atomic<bool> outer_done{false};
  pool.submit([&] {
    for (int i = 0; i < 8; ++i) {
      pool.submit([&] { inner_done.fetch_add(1); });
    }
    outer_done.store(true);
  });
  while (!outer_done.load() || inner_done.load() < 8) {
    pool.run_one();
    std::this_thread::yield();
  }
  EXPECT_EQ(inner_done.load(), 8);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> visits(kN);
  parallel_for(&pool, kN, [&](std::size_t i) { visits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, NullPoolFallsBackToSerial) {
  std::vector<int> visits(64, 0);
  std::thread::id caller = std::this_thread::get_id();
  bool same_thread = true;
  parallel_for(nullptr, visits.size(), [&](std::size_t i) {
    ++visits[i];
    same_thread = same_thread && std::this_thread::get_id() == caller;
  });
  EXPECT_TRUE(same_thread);
  EXPECT_EQ(std::accumulate(visits.begin(), visits.end(), 0), 64);
}

TEST(ParallelFor, PropagatesExceptionAndPoolStaysUsable) {
  ThreadPool pool(4);
  auto boom = [&] {
    parallel_for(&pool, 256, [](std::size_t i) {
      if (i == 137) throw std::runtime_error("index 137");
    });
  };
  EXPECT_THROW(boom(), std::runtime_error);
  try {
    boom();
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "index 137");
  }
  // The pool survives a failed section and runs the next one fully.
  std::atomic<int> counter{0};
  parallel_for(&pool, 100, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 100);
}

TEST(ParallelFor, NestedSectionsComplete) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  parallel_for(&pool, 8, [&](std::size_t) {
    parallel_for(&pool, 16, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 8 * 16);
}

TEST(ParallelMap, ResultsComeBackInInputOrder) {
  ThreadPool pool(4);
  std::vector<int> items(500);
  std::iota(items.begin(), items.end(), 0);
  // Uneven per-item cost exercises out-of-order completion.
  std::vector<int> doubled = parallel_map(&pool, items, [](const int& v) {
    volatile int spin = (v * 7919) % 257;
    while (spin > 0) spin = spin - 1;
    return v * 2;
  });
  ASSERT_EQ(doubled.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(doubled[i], static_cast<int>(i) * 2) << "index " << i;
  }
}

TEST(ParallelMap, SerialAndParallelAgree) {
  std::vector<std::string> items;
  for (int i = 0; i < 200; ++i) items.push_back(std::to_string(i));
  auto fn = [](const std::string& s) { return s + "!"; };
  ThreadPool pool(4);
  EXPECT_EQ(parallel_map(&pool, items, fn),
            parallel_map(nullptr, items, fn));
}

TEST(ParallelMap, EmptyAndSingleItemInputs) {
  ThreadPool pool(4);
  std::vector<int> empty;
  EXPECT_TRUE(parallel_map(&pool, empty, [](const int& v) { return v; })
                  .empty());
  std::vector<int> one{41};
  auto result = parallel_map(&pool, one, [](const int& v) { return v + 1; });
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0], 42);
}

TEST(ParallelFor, RespectsExplicitGrain) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(97);
  parallel_for(
      &pool, visits.size(), [&](std::size_t i) { visits[i].fetch_add(1); },
      /*grain=*/10);
  for (std::size_t i = 0; i < visits.size(); ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

}  // namespace
}  // namespace rrr::runtime
