// End-to-end properties of the experiment World: determinism, ground-truth
// consistency, and the staleness oracle.
#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "eval/world.h"

namespace rrr::eval {
namespace {

WorldParams fast_params(std::uint64_t seed) {
  WorldParams params;
  params.days = 4;
  params.warmup_days = 1;
  params.corpus_pair_target = 200;
  params.corpus_dest_count = 12;
  params.public_dest_count = 50;
  params.public_traces_per_window = 150;
  params.platform.num_probes = 200;
  params.topology.num_transit = 24;
  params.topology.num_stub = 80;
  params.seed = seed;
  return params;
}

struct RunResult {
  std::size_t pairs = 0;
  std::size_t changes = 0;
  std::size_t signals = 0;
  std::vector<std::uint64_t> change_fingerprint;
};

RunResult run_world(std::uint64_t seed) {
  World world(fast_params(seed));
  RunResult result;
  World::Hooks hooks;
  hooks.on_signals = [&](std::int64_t, TimePoint,
                         std::vector<signals::StalenessSignal>&& sigs) {
    result.signals += sigs.size();
  };
  world.run_until(world.corpus_t0(), hooks);
  result.pairs = world.initialize_corpus();
  world.run_until(world.end(), hooks);
  result.changes = world.ground_truth().changes().size();
  for (const ChangeEvent& change : world.ground_truth().changes()) {
    result.change_fingerprint.push_back(
        hash_combine(static_cast<std::uint64_t>(change.time.seconds()),
                     change.pair.dst.value()));
  }
  return result;
}

TEST(World, FullyDeterministicPerSeed) {
  RunResult a = run_world(5);
  RunResult b = run_world(5);
  EXPECT_EQ(a.pairs, b.pairs);
  EXPECT_EQ(a.changes, b.changes);
  EXPECT_EQ(a.signals, b.signals);
  EXPECT_EQ(a.change_fingerprint, b.change_fingerprint);
}

TEST(World, DifferentSeedsProduceDifferentRuns) {
  RunResult a = run_world(5);
  RunResult b = run_world(6);
  EXPECT_NE(a.change_fingerprint, b.change_fingerprint);
}

class WorldGroundTruth : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WorldGroundTruth, IncrementalTrackingMatchesResolver) {
  // The ground truth maintained incrementally through event impacts must
  // equal a from-scratch resolution at the end of the run.
  World world(fast_params(GetParam()));
  world.run_until(world.corpus_t0());
  world.initialize_corpus();
  world.run_until(world.end());
  for (const tr::PairKey& pair : world.ground_truth().pairs()) {
    const auto& tracked = world.ground_truth().current(pair);
    const tr::Probe& probe = world.platform().probe(pair.probe);
    auto fresh = world.control_plane().resolver().resolve(
        probe.as, probe.city, pair.dst,
        GroundTruth::flow_of(probe.ip, pair.dst), /*with_ip_hops=*/false);
    EXPECT_EQ(GroundTruth::classify(tracked, fresh),
              tracemap::ChangeKind::kNone)
        << "incremental ground truth diverged for probe " << pair.probe;
  }
}

TEST_P(WorldGroundTruth, SignaturesTrackHistory) {
  World world(fast_params(GetParam()));
  world.run_until(world.corpus_t0());
  world.initialize_corpus();
  world.run_until(world.end());
  const auto& changes = world.ground_truth().changes();
  for (std::size_t i = 0; i < changes.size() && i < 20; ++i) {
    const ChangeEvent& change = changes[i];
    // A change means the border signature differs across its instant.
    EXPECT_NE(world.ground_truth().border_signature_at(
                  change.pair, change.time - 1),
              world.ground_truth().border_signature_at(change.pair,
                                                       change.time));
    if (change.kind == tracemap::ChangeKind::kAsLevel) {
      EXPECT_NE(world.ground_truth().as_signature_at(change.pair,
                                                     change.time - 1),
                world.ground_truth().as_signature_at(change.pair,
                                                     change.time));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorldGroundTruth, ::testing::Values(3, 9));

TEST(StalenessOracleTest, ReferenceFollowsRefreshes) {
  World world(fast_params(4));
  world.run_until(world.corpus_t0());
  world.initialize_corpus();
  world.run_until(world.end());
  const auto& changes = world.ground_truth().changes();
  if (changes.empty()) GTEST_SKIP();

  StalenessOracle oracle;
  oracle.ground_truth = &world.ground_truth();
  oracle.corpus_t0 = world.corpus_t0();
  // No refreshes: stale from the first change onward.
  const ChangeEvent& first = changes.front();
  EXPECT_FALSE(oracle.stale(first.pair, first.time - 1));
  EXPECT_TRUE(oracle.stale(first.pair, first.time + 1));
  // With a refresh right after the change, the pair is fresh again.
  oracle.refresh_times = {first.time + 2};
  EXPECT_FALSE(oracle.stale(first.pair, first.time + 3));
}

TEST(World, CorpusInitializationRespectsTarget) {
  WorldParams params = fast_params(8);
  params.corpus_pair_target = 37;
  World world(params);
  world.run_until(world.corpus_t0());
  EXPECT_EQ(world.initialize_corpus(), 37u);
  EXPECT_EQ(world.engine().corpus_size(), 37u);
  EXPECT_EQ(world.ground_truth().pairs().size(), 37u);
}

}  // namespace
}  // namespace rrr::eval
