// Quickstart: build a small simulated Internet, monitor a corpus of
// traceroutes, and watch staleness prediction signals arrive without a
// single refresh measurement.
//
//   $ ./examples/quickstart [days]
//
// The example wires the full pipeline the way the paper's system would run
// against RouteViews/RIS and RIPE Atlas: a BGP feed and a public traceroute
// stream flow into the StalenessEngine, which flags corpus traceroutes
// whose paths have likely changed. Ground truth from the simulator then
// shows how many flags were right.
#include <cstdlib>
#include <iostream>
#include <map>

#include "eval/metrics.h"
#include "eval/report.h"
#include "eval/world.h"

int main(int argc, char** argv) {
  using namespace rrr;

  int days = argc > 1 ? std::atoi(argv[1]) : 7;

  eval::WorldParams params;
  params.days = days;
  params.corpus_pair_target = 600;
  params.corpus_dest_count = 25;
  params.public_traces_per_window = 120;
  params.topology.num_transit = 40;
  params.topology.num_stub = 160;
  params.seed = 7;

  std::cout << "Building a simulated Internet ("
            << params.topology.num_tier1 + params.topology.num_transit +
                   params.topology.num_stub
            << " ASes) and running " << days << " days...\n";

  eval::World world(params);
  std::cout << "  topology: " << world.topology().links().size()
            << " AS links, " << world.topology().interconnects().size()
            << " interconnects, " << world.topology().ixps().size()
            << " IXPs\n";
  std::cout << "  BGP feed: " << world.feed().vantage_points().size()
            << " vantage points\n";

  std::vector<signals::StalenessSignal> all_signals;
  std::map<signals::Technique, std::int64_t> by_technique;

  eval::World::Hooks hooks;
  hooks.on_signals = [&](std::int64_t window, TimePoint end,
                         std::vector<signals::StalenessSignal>&& sigs) {
    (void)window;
    (void)end;
    for (auto& s : sigs) {
      ++by_technique[s.technique];
      all_signals.push_back(std::move(s));
    }
  };
  hooks.on_day = [&](int day, TimePoint end) {
    (void)end;
    std::cout << "  day " << day << ": " << all_signals.size()
              << " signals so far, "
              << world.engine().stale_pairs().size()
              << " corpus traceroutes currently flagged stale\n";
  };

  world.run_until(world.corpus_t0(), hooks);
  std::size_t pairs = world.initialize_corpus();
  std::cout << "  corpus: " << pairs << " (probe, destination) pairs\n";
  world.run_until(world.end(), hooks);

  std::cout << "\nSignals by technique:\n";
  for (const auto& [technique, count] : by_technique) {
    std::cout << "  " << signals::to_string(technique) << ": " << count
              << "\n";
  }

  const auto& changes = world.ground_truth().changes();
  std::cout << "\nGround truth: " << changes.size()
            << " border-or-AS-level path changes occurred.\n";

  eval::SignalMatcher matcher(all_signals, changes);
  eval::Table2Result result = matcher.table2();
  std::cout << "Combined precision: "
            << eval::TableWriter::fmt_pct(result.all.precision)
            << ", coverage of all changes: "
            << eval::TableWriter::fmt_pct(result.all.cov_all) << "\n";
  std::cout << "\nA real deployment would now refresh (or prune) only the "
               "flagged traceroutes.\n";
  return 0;
}
