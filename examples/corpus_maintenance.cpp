// Corpus maintenance under a probing budget — the paper's primary use case
// (§4.3, §5.2): a monitoring system owns a corpus of traceroutes, can only
// afford a few refreshes per day, and uses staleness prediction signals plus
// the TPR/TNR-calibrated scheduler to spend them where paths actually
// changed.
//
//   $ ./examples/corpus_maintenance [days] [budget-per-day]
#include <cstdlib>
#include <iostream>

#include "eval/world.h"

int main(int argc, char** argv) {
  using namespace rrr;
  int days = argc > 1 ? std::atoi(argv[1]) : 10;
  int budget = argc > 2 ? std::atoi(argv[2]) : 40;

  eval::WorldParams params;
  params.days = days;
  params.corpus_pair_target = 1000;
  params.corpus_dest_count = 30;
  params.public_traces_per_window = 300;
  // Live mode: refreshes are paid for, nothing is remeasured for free.
  params.recalibration_interval_windows = 0;
  params.seed = 17;

  eval::World world(params);
  world.run_until(world.corpus_t0());
  std::size_t pairs = world.initialize_corpus();
  std::cout << "Maintaining a corpus of " << pairs
            << " traceroutes with a budget of " << budget
            << " refreshes/day.\n\n";

  std::int64_t refreshes = 0, useful = 0;
  eval::World::Hooks hooks;
  hooks.on_day = [&](int day, TimePoint t) {
    if (t <= world.corpus_t0()) return;
    // Ask the engine which traceroutes deserve this day's budget.
    auto chosen = world.engine().plan_refreshes(budget);
    int hits = 0;
    for (const tr::PairKey& pair : chosen) {
      tr::Traceroute fresh = world.issue_corpus_traceroute(pair, t);
      auto outcome = world.engine().apply_refresh(
          world.platform().probe(pair.probe), fresh);
      ++refreshes;
      if (outcome.change != tracemap::ChangeKind::kNone) {
        ++useful;
        ++hits;
      }
    }
    std::cout << "day " << day << ": " << chosen.size()
              << " refreshes issued, " << hits << " confirmed changes, "
              << world.engine().stale_pairs().size()
              << " pairs still flagged\n";
  };
  world.run_until(world.end(), hooks);

  std::cout << "\nTotal: " << refreshes << " refreshes, " << useful
            << " revealed a real change ("
            << (refreshes
                    ? static_cast<int>(100.0 * double(useful) /
                                       double(refreshes))
                    : 0)
            << "% of budget well spent; random selection wastes most of "
               "it, Figure 7a).\n";
  return 0;
}
