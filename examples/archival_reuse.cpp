// Reusing archival traceroutes (§6.2): accumulate measurements for a while,
// then answer "which of these are still safe to use?" and "can this new
// measurement request be served from the archive instead of probing?".
//
//   $ ./examples/archival_reuse [days]
#include <cstdlib>
#include <iostream>
#include <map>
#include <set>

#include "eval/world.h"

int main(int argc, char** argv) {
  using namespace rrr;
  int days = argc > 1 ? std::atoi(argv[1]) : 8;

  eval::WorldParams params;
  params.days = days;
  params.corpus_pair_target = 800;
  params.corpus_dest_count = 25;
  params.public_traces_per_window = 300;
  params.recalibration_interval_windows = 0;  // archive: no refreshes at all
  params.seed = 23;

  eval::World world(params);
  world.run_until(world.corpus_t0());
  std::size_t pairs = world.initialize_corpus();
  std::cout << "Archiving one traceroute per (probe, destination) pair ("
            << pairs << " pairs) and monitoring them for " << days
            << " days without remeasuring.\n\n";

  std::map<tr::PairKey, TimePoint> first_signal;
  eval::World::Hooks hooks;
  hooks.on_signals = [&](std::int64_t, TimePoint,
                         std::vector<signals::StalenessSignal>&& sigs) {
    for (const auto& s : sigs) first_signal.try_emplace(s.pair, s.time);
  };
  world.run_until(world.end(), hooks);

  std::int64_t fresh = 0, stale = 0, unknown = 0;
  for (const tr::PairKey& pair : world.ground_truth().pairs()) {
    if (first_signal.contains(pair)) {
      ++stale;
    } else if (world.engine().freshness(pair) == tr::Freshness::kUnknown) {
      ++unknown;
    } else {
      ++fresh;
    }
  }
  std::cout << "Archive verdicts after " << days << " days:\n"
            << "  fresh (safe to reuse):        " << fresh << "\n"
            << "  stale (path likely changed):  " << stale << "\n"
            << "  unknown (borders unmonitored): " << unknown << "\n\n";

  // How good are the verdicts? Compare with ground truth.
  std::int64_t fresh_right = 0, stale_right = 0;
  for (const tr::PairKey& pair : world.ground_truth().pairs()) {
    bool actually_changed = eval::GroundTruth::classify(
                                world.ground_truth().initial(pair),
                                world.ground_truth().current(pair)) !=
                            tracemap::ChangeKind::kNone;
    if (first_signal.contains(pair)) {
      if (actually_changed) ++stale_right;
    } else if (world.engine().freshness(pair) != tr::Freshness::kUnknown) {
      if (!actually_changed) ++fresh_right;
    }
  }
  auto pct = [](std::int64_t n, std::int64_t d) {
    return d ? static_cast<int>(100.0 * double(n) / double(d)) : 0;
  };
  std::cout << "Verdict quality vs ground truth:\n"
            << "  'fresh' verdicts correct: " << pct(fresh_right, fresh)
            << "%\n"
            << "  'stale' verdicts that did change at some point: "
            << pct(stale_right, stale) << "%\n\n";

  // Request serving: can (source AS+city -> destination /16) demands be
  // answered from the fresh part of the archive?
  std::set<std::pair<std::uint64_t, std::uint32_t>> all, servable;
  for (const tr::PairKey& pair : world.ground_truth().pairs()) {
    const tr::Probe& probe = world.platform().probe(pair.probe);
    std::uint64_t src = (std::uint64_t{probe.as} << 16) | probe.city;
    std::uint32_t dst = pair.dst.value() >> 16;
    all.insert({src, dst});
    if (!first_signal.contains(pair) &&
        world.engine().freshness(pair) == tr::Freshness::kFresh) {
      servable.insert({src, dst});
    }
  }
  std::cout << "Of " << all.size()
            << " distinct (source, destination-prefix) demands, "
            << pct(static_cast<std::int64_t>(servable.size()),
                   static_cast<std::int64_t>(all.size()))
            << "% can be served from the archive without any probing "
               "(paper: 90.3%).\n";
  return 0;
}
